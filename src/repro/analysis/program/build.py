"""Build the whole program once and run every rule over it.

This is the analysis pipeline behind ``python -m repro lint``:

1. enumerate the target files and hash their contents;
2. for each file, either load the per-file record from the content-hash
   cache (warm path: no parse) or parse it once, dispatch the per-file
   rules, extract :class:`~.facts.ModuleFacts` and expand pragmas — on a
   cold run with ``jobs > 1`` the misses fan out across a process pool;
3. assemble the :class:`~.graph.ProgramGraph` from all facts and run the
   registered whole-program rules (REP009/REP010/REP011) over it;
4. pragma-filter the program findings with each file's stored pragma map
   and merge everything into one :class:`~..walker.LintResult`.

The returned :class:`ProgramAnalysis` also reports which files were
re-parsed and which files' whole-program findings a change could have
affected (the changed files plus their reverse import closure) — the
invalidation contract the cache tests pin down.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..findings import Finding, sort_findings
from ..pragmas import is_suppressed
from .cache import DEFAULT_CACHE_DIR, FileRecord, ProgramCache
from .facts import ModuleFacts, content_hash
from .graph import ProgramGraph, build_graph
from .registry import ProgramRule, default_program_rules

#: Below this many cache misses a process pool costs more than it saves.
MIN_FILES_FOR_POOL = 8

#: Upper bound on one worker's parse batch — a hung worker cannot stall the
#: lint run forever (600s is far beyond any real parse).
POOL_TIMEOUT_S = 600.0


@dataclass
class ProgramAnalysis:
    """Outcome of one whole-program analysis run."""

    findings: List[Finding]
    files_scanned: int
    suppressed: int
    graph: ProgramGraph
    #: files parsed this run (cache misses)
    reparsed: List[str] = field(default_factory=list)
    #: files whose whole-program findings the reparsed set can affect:
    #: the reparsed files plus their reverse import closure
    invalidated: List[str] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0

    def lint_result(self):
        """Adapt to the :class:`~repro.analysis.walker.LintResult` surface."""
        from ..walker import LintResult

        return LintResult(
            findings=self.findings,
            files_scanned=self.files_scanned,
            suppressed=self.suppressed,
            reparsed=list(self.reparsed),
            invalidated=list(self.invalidated),
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
        )


def _analyze_file_record(path: str, source: str, rules=None) -> FileRecord:
    """Parse one file and compute its cacheable record (single parse)."""
    from ..pragmas import collect_pragmas, expand_decorated_pragmas
    from ..walker import parse_source, run_file_rules

    digest = content_hash(source)
    tree, parse_failure = parse_source(source, path)
    if tree is None:
        facts = ModuleFacts(path=path, module="", content_hash=digest)
        return FileRecord(
            content_hash=digest,
            findings=[parse_failure] if parse_failure else [],
            suppressed=0,
            pragmas={},
            facts=facts,
        )
    from .facts import extract_facts

    pragmas = expand_decorated_pragmas(tree, collect_pragmas(source))
    raw = run_file_rules(tree, path, rules)
    kept = [
        finding
        for finding in raw
        if not is_suppressed(pragmas, finding.line, finding.rule, finding.name)
    ]
    facts = extract_facts(tree, source, path)
    return FileRecord(
        content_hash=digest,
        findings=sort_findings(kept),
        suppressed=len(raw) - len(kept),
        pragmas=pragmas,
        facts=facts,
    )


def _analyze_file_job(path: str) -> Dict[str, object]:
    """Process-pool entry point: read, analyze, return a serialized record."""
    source = Path(path).read_text(encoding="utf-8")
    return _analyze_file_record(path, source).to_dict()


def _analyze_misses(
    misses: List[str], sources: Dict[str, str], rules, jobs: int
) -> Dict[str, FileRecord]:
    """Analyze every cache miss, fanning across processes when it pays."""
    records: Dict[str, FileRecord] = {}
    if jobs > 1 and len(misses) >= MIN_FILES_FOR_POOL and rules is None:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {
                pool.submit(_analyze_file_job, path): path  # repro: allow[timeout-discipline] lint-local pool; every wait below is bounded
                for path in misses
            }
            for future in as_completed(futures, timeout=POOL_TIMEOUT_S):
                path = futures[future]
                records[path] = FileRecord.from_dict(future.result(timeout=POOL_TIMEOUT_S))
        return records
    for path in misses:
        records[path] = _analyze_file_record(path, sources[path], rules)
    return records


def analyze_program(
    paths: Iterable[str],
    rules: Optional[Sequence] = None,
    program_rules: Optional[Sequence[ProgramRule]] = None,
    cache_dir: Optional[str] = None,
    jobs: int = 1,
) -> ProgramAnalysis:
    """Analyze every Python file under ``paths`` as one program."""
    from ..walker import iter_python_files

    files = [source.as_posix() for source in iter_python_files(paths)]
    sources = {path: Path(path).read_text(encoding="utf-8") for path in files}
    hashes = {path: content_hash(sources[path]) for path in files}

    cache = ProgramCache(cache_dir) if cache_dir else None
    records: Dict[str, FileRecord] = {}
    misses: List[str] = []
    for path in files:
        record = cache.get(path, hashes[path]) if cache else None
        if record is None:
            misses.append(path)
        else:
            records[path] = record
    records.update(_analyze_misses(misses, sources, rules, jobs))

    graph = build_graph(
        record.facts for record in records.values() if record.facts.module
    )
    active_program_rules = (
        list(program_rules) if program_rules is not None else default_program_rules()
    )
    program_findings: List[Finding] = []
    for rule in active_program_rules:
        program_findings.extend(rule.check(graph))

    findings: List[Finding] = []
    suppressed = 0
    for path in files:
        record = records[path]
        findings.extend(record.findings)
        suppressed += record.suppressed
    kept_program = []
    for finding in program_findings:
        pragmas = records[finding.path].pragmas if finding.path in records else {}
        if is_suppressed(pragmas, finding.line, finding.rule, finding.name):
            suppressed += 1
        else:
            kept_program.append(finding)
    findings.extend(kept_program)

    invalidated = sorted(graph.dependents_of(misses)) if misses else []
    analysis = ProgramAnalysis(
        findings=sort_findings(findings),
        files_scanned=len(files),
        suppressed=suppressed,
        graph=graph,
        reparsed=sorted(misses),
        invalidated=invalidated,
        cache_hits=cache.hits if cache else 0,
        cache_misses=cache.misses if cache else len(files),
    )
    if cache is not None:
        for path, record in records.items():
            if path in misses or cache.entries.get(path) is not record:
                cache.put(path, record)
        cache.prune(set(files))
        cache.flush()
    return analysis


__all__ = [
    "DEFAULT_CACHE_DIR",
    "MIN_FILES_FOR_POOL",
    "ProgramAnalysis",
    "analyze_program",
]
