"""Cross-module symbol table, call graph and whole-program fixpoints.

:class:`ProgramGraph` is built from per-module :class:`~.facts.ModuleFacts`
(freshly extracted or loaded from the content-hash cache) and answers the
questions the whole-program rules ask:

* **symbol resolution** — what does the name ``X`` mean inside module ``M``?
  Follows import aliases and re-export chains (``from .graph import build``
  in a package ``__init__`` resolves through to the defining module);
  wildcard imports are *rejected* — a ``from x import *`` makes every
  unresolved name in the importer ambiguous, and the resolver refuses to
  guess (:meth:`ProgramGraph.resolve` returns ``None`` and records why).
* **call resolution** — which function does a call site reach?  Handles
  module-level functions, imported symbols, ``self.method()``, ``cls.method``,
  methods on typed instance attributes (``self._supervisor.replan()`` via the
  ``self._supervisor = ShardSupervisor(...)`` constructor assignment),
  constructor calls (``ClassName(...)`` → ``ClassName.__init__``) and local
  callback aliases (``cb = self._emit; cb(...)``).
* **fixpoints** — which functions (transitively) return model-typed values,
  which return sets, and which locks a function may acquire transitively
  through its callees.  All three are small worklist iterations over the
  compact fact records, recomputed on every run: global properties are
  global, so caching them per-file would be unsound.

Everything here is stdlib-only and name-based — the resolver trusts what the
code says, and when the code is too dynamic it says "unresolved" rather than
guessing, which keeps the downstream rules' false-positive rate honest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .facts import MODELISH_NAMES, ClassFacts, FunctionFacts, ModuleFacts

#: Resolution cut-off for re-export chains (defensive; cycles are detected).
_MAX_CHAIN = 32


@dataclass(frozen=True)
class SymbolRef:
    """A resolved symbol: where it is defined and what it is."""

    module: str  # defining module
    qualname: str  # name inside the module ("" for the module itself)
    kind: str  # "function" | "class" | "module" | "value"


class ProgramGraph:
    """The whole program as one queryable object."""

    def __init__(self, modules: Iterable[ModuleFacts]) -> None:
        self.modules: Dict[str, ModuleFacts] = {}
        for facts in modules:
            self.modules[facts.module] = facts
        self._resolve_cache: Dict[Tuple[str, str], Optional[SymbolRef]] = {}
        #: modules whose wildcard imports poison unresolved-name lookups
        self.wildcard_importers: Set[str] = {
            facts.module
            for facts in self.modules.values()
            if any(imp.wildcard for imp in facts.imports)
        }
        self._returns_model: Optional[FrozenSet[Tuple[str, str]]] = None
        self._returns_set: Optional[FrozenSet[Tuple[str, str]]] = None
        self._locks: Optional[Dict[Tuple[str, str], FrozenSet[str]]] = None

    # ------------------------------------------------------------------ #
    # module / function iteration helpers
    # ------------------------------------------------------------------ #
    def functions(self) -> Iterable[Tuple[ModuleFacts, FunctionFacts]]:
        for facts in self.modules.values():
            for fn in facts.functions.values():
                yield facts, fn

    def function(self, module: str, qualname: str) -> Optional[FunctionFacts]:
        facts = self.modules.get(module)
        return facts.functions.get(qualname) if facts else None

    def class_of(self, module: str, qualname: str) -> Optional[ClassFacts]:
        facts = self.modules.get(module)
        return facts.classes.get(qualname) if facts else None

    def enclosing_class(self, fn: FunctionFacts) -> Optional[str]:
        """Class qualname of a method ("Class.method" -> "Class")."""
        if "." not in fn.qualname:
            return None
        return fn.qualname.rsplit(".", 1)[0]

    # ------------------------------------------------------------------ #
    # symbol resolution
    # ------------------------------------------------------------------ #
    def resolve(self, module: str, name: str) -> Optional[SymbolRef]:
        """Resolve ``name`` as seen from ``module`` (imports followed).

        Returns ``None`` for external names, dynamic bindings, and for any
        unresolved name inside a module that uses ``from x import *`` — the
        wildcard makes the namespace ambiguous, so resolution is rejected
        wholesale rather than guessed at.
        """
        key = (module, name)
        if key not in self._resolve_cache:
            self._resolve_cache[key] = self._resolve(module, name, 0, set())
        return self._resolve_cache[key]

    def _resolve(
        self, module: str, name: str, depth: int, seen: Set[Tuple[str, str]]
    ) -> Optional[SymbolRef]:
        if depth > _MAX_CHAIN or (module, name) in seen:
            return None
        seen.add((module, name))
        facts = self.modules.get(module)
        if facts is None:
            return None
        head, _, rest = name.partition(".")
        local = self._local_symbol(facts, head)
        if local is not None:
            return self._descend(local, rest, depth, seen)
        for imp in facts.imports:
            if imp.wildcard or imp.alias != head:
                continue
            if imp.symbol is None:
                # `import pkg.mod` / `import pkg.mod as alias`
                target = SymbolRef(module=imp.module, qualname="", kind="module")
                return self._descend(target, rest, depth, seen)
            # `from pkg import symbol` — symbol may itself be a submodule
            if imp.symbol and f"{imp.module}.{imp.symbol}" in self.modules:
                target = SymbolRef(
                    module=f"{imp.module}.{imp.symbol}", qualname="", kind="module"
                )
                return self._descend(target, rest, depth, seen)
            inner = self._resolve(imp.module, imp.symbol, depth + 1, seen)
            if inner is None:
                return None
            return self._descend(inner, rest, depth, seen)
        if module in self.wildcard_importers:
            # could come from the wildcard — refuse to resolve
            return None
        return None

    def _local_symbol(self, facts: ModuleFacts, name: str) -> Optional[SymbolRef]:
        if name in facts.functions:
            return SymbolRef(module=facts.module, qualname=name, kind="function")
        if name in facts.classes:
            return SymbolRef(module=facts.module, qualname=name, kind="class")
        if name in facts.module_locks or name in facts.module_sets:
            return SymbolRef(module=facts.module, qualname=name, kind="value")
        return None

    def _descend(
        self, ref: SymbolRef, rest: str, depth: int, seen: Set[Tuple[str, str]]
    ) -> Optional[SymbolRef]:
        if not rest:
            return ref
        if ref.kind == "module":
            return self._resolve(ref.module, rest, depth + 1, seen)
        if ref.kind == "class":
            # ClassName.method (one level)
            facts = self.modules.get(ref.module)
            if facts is None or "." in rest:
                return None
            qualname = f"{ref.qualname}.{rest}"
            if qualname in facts.functions:
                return SymbolRef(module=ref.module, qualname=qualname, kind="function")
        return None

    # ------------------------------------------------------------------ #
    # call resolution
    # ------------------------------------------------------------------ #
    def resolve_call(
        self, facts: ModuleFacts, fn: FunctionFacts, callee: str
    ) -> Optional[SymbolRef]:
        """Resolve one call expression inside ``fn`` to its target function."""
        ref = self._resolve_call_ref(facts, fn, callee, 0)
        if ref is None:
            return None
        if ref.kind == "class":
            init = f"{ref.qualname}.__init__"
            target = self.modules.get(ref.module)
            if target is not None and init in target.functions:
                return SymbolRef(module=ref.module, qualname=init, kind="function")
            return ref
        return ref if ref.kind == "function" else None

    def _resolve_call_ref(
        self, facts: ModuleFacts, fn: FunctionFacts, callee: str, depth: int
    ) -> Optional[SymbolRef]:
        if depth > _MAX_CHAIN:
            return None
        head, _, rest = callee.partition(".")
        if head in ("self", "cls"):
            cls_name = self.enclosing_class(fn)
            if cls_name is None or not rest:
                return None
            attr, _, tail = rest.partition(".")
            method_ref = self._method_on(facts.module, cls_name, attr)
            if method_ref is not None and not tail:
                return method_ref
            # self.<attr>.<method>(): follow the constructor-typed attribute
            cls = self.class_of(facts.module, cls_name)
            if cls is not None and attr in cls.attr_types and tail and "." not in tail:
                ctor = self.resolve_call(facts, fn, cls.attr_types[attr])
                owner = self._class_of_ctor(ctor)
                if owner is not None:
                    return self._method_on(owner.module, owner.qualname, tail)
            return None
        if head in fn.local_refs and depth == 0:
            return self._resolve_call_ref(
                facts, fn, fn.local_refs[head] + (("." + rest) if rest else ""), depth + 1
            )
        if rest and "." not in rest and head in fn.local_calls:
            # constructor-typed local: `coord = Coordinator(); coord.merge()`
            ctor = self._resolve_call_ref(facts, fn, fn.local_calls[head], depth + 1)
            owner = self._class_of_ctor(ctor)
            if owner is not None:
                return self._method_on(owner.module, owner.qualname, rest)
        return self.resolve(facts.module, callee)

    def _class_of_ctor(self, ref: Optional[SymbolRef]) -> Optional[SymbolRef]:
        if ref is None:
            return None
        if ref.kind == "class":
            return ref
        if ref.kind == "function" and ref.qualname.endswith(".__init__"):
            return SymbolRef(
                module=ref.module,
                qualname=ref.qualname.rsplit(".", 1)[0],
                kind="class",
            )
        return None

    def _method_on(self, module: str, cls_name: str, method: str) -> Optional[SymbolRef]:
        """Resolve ``method`` on class ``cls_name``, walking base classes."""
        seen: Set[Tuple[str, str]] = set()
        stack: List[Tuple[str, str]] = [(module, cls_name)]
        while stack:
            mod, name = stack.pop()
            if (mod, name) in seen:
                continue
            seen.add((mod, name))
            facts = self.modules.get(mod)
            if facts is None:
                continue
            qualname = f"{name}.{method}"
            if qualname in facts.functions:
                return SymbolRef(module=mod, qualname=qualname, kind="function")
            cls = facts.classes.get(name)
            if cls is None:
                continue
            for base in cls.bases:
                base_ref = self.resolve(mod, base)
                if base_ref is not None and base_ref.kind == "class":
                    stack.append((base_ref.module, base_ref.qualname))
        return None

    # ------------------------------------------------------------------ #
    # fixpoints
    # ------------------------------------------------------------------ #
    def _fixpoint_returns(self, predicate) -> FrozenSet[Tuple[str, str]]:
        """Functions whose return satisfies ``predicate`` directly or via a
        returned call to another satisfying function."""
        marked: Set[Tuple[str, str]] = set()
        for facts, fn in self.functions():
            if predicate(facts, fn):
                marked.add((facts.module, fn.qualname))
        changed = True
        while changed:
            changed = False
            for facts, fn in self.functions():
                key = (facts.module, fn.qualname)
                if key in marked:
                    continue
                for kind, value in fn.returns:
                    if kind != "call":
                        continue
                    ref = self.resolve_call(facts, fn, value)
                    if ref is not None and (ref.module, ref.qualname) in marked:
                        marked.add(key)
                        changed = True
                        break
        return frozenset(marked)

    def returns_model(self) -> FrozenSet[Tuple[str, str]]:
        """Functions that (transitively) return a model-typed value."""
        if self._returns_model is None:

            def direct(facts: ModuleFacts, fn: FunctionFacts) -> bool:
                for kind, value in fn.returns:
                    if kind == "name":
                        leaf = value.split(".")[-1]
                        if leaf in MODELISH_NAMES or value in fn.tainted_locals:
                            return True
                return False

            self._returns_model = self._fixpoint_returns(direct)
        return self._returns_model

    def returns_set(self) -> FrozenSet[Tuple[str, str]]:
        """Functions that (transitively) return a set-valued expression."""
        if self._returns_set is None:

            def direct(facts: ModuleFacts, fn: FunctionFacts) -> bool:
                annotation = fn.return_annotation.strip().lower()
                if annotation.startswith("typing."):
                    annotation = annotation[len("typing."):]
                if annotation in ("set", "frozenset") or annotation.startswith(
                    ("set[", "frozenset[")
                ):
                    return True
                for kind, value in fn.returns:
                    if kind == "set":
                        return True
                    if kind == "name" and value in fn.set_locals:
                        return True
                return False

            self._returns_set = self._fixpoint_returns(direct)
        return self._returns_set

    def transitive_locks(self) -> Dict[Tuple[str, str], FrozenSet[str]]:
        """Lock ids each function may acquire, directly or through callees."""
        if self._locks is not None:
            return self._locks
        direct: Dict[Tuple[str, str], Set[str]] = {}
        edges: Dict[Tuple[str, str], Set[Tuple[str, str]]] = {}
        for facts, fn in self.functions():
            key = (facts.module, fn.qualname)
            direct[key] = {
                lock_id
                for lock_id in (
                    self.lock_id(facts, fn, acquire.lock)
                    for acquire in fn.lock_acquires
                )
                if lock_id is not None
            }
            targets: Set[Tuple[str, str]] = set()
            for call in fn.calls:
                ref = self.resolve_call(facts, fn, call.callee)
                if ref is not None and ref.kind == "function":
                    targets.add((ref.module, ref.qualname))
            edges[key] = targets
        closure = {key: set(locks) for key, locks in direct.items()}
        changed = True
        while changed:
            changed = False
            for key, targets in edges.items():
                bucket = closure[key]
                before = len(bucket)
                for target in sorted(targets):
                    bucket |= closure.get(target, set())
                if len(bucket) != before:
                    changed = True
        self._locks = {key: frozenset(locks) for key, locks in closure.items()}
        return self._locks

    # ------------------------------------------------------------------ #
    # lock identity
    # ------------------------------------------------------------------ #
    def lock_id(
        self, facts: ModuleFacts, fn: FunctionFacts, expr: str
    ) -> Optional[str]:
        """Canonical cross-module identity of a lock expression, or ``None``.

        ``self._lock`` inside class ``C`` of module ``M`` → ``"M.C._lock"``;
        a module-level lock → ``"M.NAME"``; a lock on a constructor-typed
        attribute → the owning class's id.  Unresolvable receivers return
        ``None`` (no guessing).
        """
        head, _, rest = expr.partition(".")
        if head in ("self", "cls"):
            cls_name = self.enclosing_class(fn)
            if cls_name is None or not rest:
                return None
            attr, _, tail = rest.partition(".")
            if not tail:
                return f"{facts.module}.{cls_name}.{attr}"
            cls = self.class_of(facts.module, cls_name)
            if cls is not None and attr in cls.attr_types and "." not in tail:
                ctor = self.resolve_call(facts, fn, cls.attr_types[attr])
                owner = self._class_of_ctor(ctor)
                if owner is not None:
                    return f"{owner.module}.{owner.qualname}.{tail}"
            return None
        if not rest:
            if head in facts.module_locks:
                return f"{facts.module}.{head}"
            ref = self.resolve(facts.module, head)
            if ref is not None and ref.kind == "value":
                return f"{ref.module}.{ref.qualname}"
            return f"{facts.module}.{head}"
        return None

    def lock_kind(self, lock_id: str) -> Optional[str]:
        """``"Lock"`` / ``"RLock"`` for a resolved lock id, when known."""
        module, _, tail = lock_id.rpartition(".")
        facts = self.modules.get(module)
        if facts is not None and tail in facts.module_locks:
            return facts.module_locks[tail]
        # class-attribute lock: id is "<module>.<Class>.<attr>"
        owner_module, _, cls_attr = lock_id.rpartition(".")
        cls_module, _, cls_name = owner_module.rpartition(".")
        facts = self.modules.get(cls_module)
        if facts is not None:
            cls = facts.classes.get(cls_name)
            if cls is not None and cls_attr in cls.lock_attrs:
                return cls.lock_attrs[cls_attr]
        return None

    # ------------------------------------------------------------------ #
    # import graph / invalidation
    # ------------------------------------------------------------------ #
    def importers_of(self) -> Dict[str, Set[str]]:
        """Reverse import adjacency: module -> modules importing it."""
        reverse: Dict[str, Set[str]] = {name: set() for name in self.modules}
        for facts in self.modules.values():
            for imp in facts.imports:
                targets = [imp.module]
                if imp.symbol and f"{imp.module}.{imp.symbol}" in self.modules:
                    targets.append(f"{imp.module}.{imp.symbol}")
                for target in targets:
                    if target in reverse:
                        reverse[target].add(facts.module)
        return reverse

    def dependents_of(self, changed_paths: Iterable[str]) -> Set[str]:
        """Paths whose analysis a change to ``changed_paths`` can affect.

        The changed files plus every file that transitively imports one of
        them — the exact invalidation set for whole-program findings, because
        cross-module resolution only ever follows import edges.
        """
        by_path = {facts.path: facts.module for facts in self.modules.values()}
        changed_modules = {
            by_path[path] for path in changed_paths if path in by_path
        }
        reverse = self.importers_of()
        seen: Set[str] = set(changed_modules)
        stack = sorted(changed_modules)
        while stack:
            module = stack.pop()
            for importer in reverse.get(module, ()):
                if importer not in seen:
                    seen.add(importer)
                    stack.append(importer)
        return {
            facts.path for facts in self.modules.values() if facts.module in seen
        }


def build_graph(modules: Iterable[ModuleFacts]) -> ProgramGraph:
    """Construct a :class:`ProgramGraph` from per-module facts."""
    return ProgramGraph(modules)


__all__ = ["ProgramGraph", "SymbolRef", "build_graph"]
