"""On-disk content-hash cache: warm lint re-analyzes only changed files.

One JSON file (``program-cache.json`` inside the cache directory) maps each
analyzed path to its content hash plus the per-file analysis record — the
per-file rule findings (already pragma-filtered), the suppressed count, the
expanded pragma map, and the extracted :class:`~.facts.ModuleFacts`.  A warm
run loads records for unchanged files and re-parses only what changed; the
whole-program pass is then recomputed from facts, which is cheap next to
parsing ~100 modules.

Safety: the cache is keyed by an **analysis fingerprint** — a hash over the
source of the entire ``repro.analysis`` package — so editing any rule, the
walker, or the extractor invalidates every entry at once.  A corrupt or
version-skewed cache file is treated as empty, never trusted.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

from ..findings import Finding
from .facts import ModuleFacts

CACHE_VERSION = 1

#: Default cache directory, repo-local and gitignored.
DEFAULT_CACHE_DIR = ".repro-lint-cache"

_FINGERPRINT: Optional[str] = None


def analysis_fingerprint() -> str:
    """Hash of the analyzer's own source: any rule edit drops the cache."""
    global _FINGERPRINT
    if _FINGERPRINT is None:
        digest = hashlib.sha256(f"cache-v{CACHE_VERSION}".encode())
        package_root = Path(__file__).resolve().parents[1]
        for source in sorted(package_root.rglob("*.py")):
            digest.update(source.as_posix().encode())
            digest.update(source.read_bytes())
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


class FileRecord:
    """Cached outcome of analyzing one file."""

    def __init__(
        self,
        content_hash: str,
        findings: List[Finding],
        suppressed: int,
        pragmas: Dict[int, Set[str]],
        facts: ModuleFacts,
    ) -> None:
        self.content_hash = content_hash
        self.findings = findings
        self.suppressed = suppressed
        self.pragmas = pragmas
        self.facts = facts

    def to_dict(self) -> Dict[str, object]:
        return {
            "content_hash": self.content_hash,
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressed": self.suppressed,
            "pragmas": {
                str(line): sorted(ids) for line, ids in self.pragmas.items()
            },
            "facts": self.facts.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FileRecord":
        return cls(
            content_hash=str(data["content_hash"]),
            findings=[Finding.from_dict(row) for row in data["findings"]],
            suppressed=int(data["suppressed"]),
            pragmas={
                int(line): set(ids) for line, ids in dict(data["pragmas"]).items()
            },
            facts=ModuleFacts.from_dict(dict(data["facts"])),
        )


class ProgramCache:
    """The on-disk store of :class:`FileRecord` entries."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.path = self.root / "program-cache.json"
        self.fingerprint = analysis_fingerprint()
        self.entries: Dict[str, FileRecord] = {}
        self.hits = 0
        self.misses = 0
        self._dirty = False
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
            if (
                data.get("version") != CACHE_VERSION
                or data.get("fingerprint") != self.fingerprint
            ):
                return  # analyzer changed — start cold
            for path, raw in data.get("entries", {}).items():
                self.entries[path] = FileRecord.from_dict(raw)
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            self.entries = {}  # corrupt cache: treat as empty, never trust

    def get(self, path: str, content_hash: str) -> Optional[FileRecord]:
        """Cached record for ``path`` when its content is unchanged."""
        record = self.entries.get(path)
        if record is not None and record.content_hash == content_hash:
            self.hits += 1
            return record
        self.misses += 1
        return None

    def put(self, path: str, record: FileRecord) -> None:
        self.entries[path] = record
        self._dirty = True

    def prune(self, live_paths: Set[str]) -> None:
        """Drop entries for files no longer part of the analyzed set."""
        stale = set(self.entries) - live_paths
        for path in sorted(stale):
            del self.entries[path]
            self._dirty = True

    def flush(self) -> None:
        """Persist the cache (atomic rename; a torn write is a cold start)."""
        if not self._dirty:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": CACHE_VERSION,
            "fingerprint": self.fingerprint,
            "entries": {
                path: record.to_dict() for path, record in sorted(self.entries.items())
            },
        }
        scratch = self.path.with_suffix(".json.tmp")
        scratch.write_text(json.dumps(payload), encoding="utf-8")
        scratch.replace(self.path)
        self._dirty = False


__all__ = [
    "CACHE_VERSION",
    "DEFAULT_CACHE_DIR",
    "FileRecord",
    "ProgramCache",
    "analysis_fingerprint",
]
