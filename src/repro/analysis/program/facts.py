"""Per-module fact extraction — the cacheable half of whole-program analysis.

A :class:`ModuleFacts` record is everything the program-level rules need to
know about one file, extracted in a single structured walk over the same AST
the per-file rules dispatch on (one parse per file, ever).  Facts are plain
JSON-serializable data, which is what makes the on-disk content-hash cache
possible: a warm ``python -m repro lint`` loads facts for unchanged files
instead of re-parsing them, and whole-program resolution (symbol table, call
graph, lock graph, taint) is recomputed from facts — it is cheap, and global
rules are global, so per-file caching of *their* output would be unsound.

The extractor is deliberately name-based and syntactic, like the rest of the
linter: it records what the code *says* (dotted receiver chains, ``with
self._lock:`` nesting, set-valued expressions) and leaves resolution to
:mod:`.graph`, which is where cross-module knowledge lives.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

#: Terminal name components that mark a value as model-typed for taint
#: purposes.  Kept here (not in ``rules.funnel``) so both the per-file REP001
#: rule and the interprocedural REP010 rule import one canonical list without
#: creating an import cycle through the rules package.
MODELISH_NAMES = ("model", "network", "classifier")

#: Methods that constitute model query traffic (shared with REP001).
QUERY_METHODS = ("predict", "predict_proba", "loss_input_gradient", "forward")

#: Receiver-name token that marks funnel traffic for REP001/REP010.
ENGINE_TOKEN = "engine"

#: Callables whose consumption of an iterable is order-insensitive — feeding
#: a set into these cannot leak iteration order into results.
ORDER_SAFE_CALLEES = frozenset(
    {"sorted", "sum", "any", "all", "min", "max", "len", "set", "frozenset"}
)

#: Callables that materialize an iterable *in iteration order* — a set-valued
#: argument here is exactly as order-leaky as a ``for`` loop over it.
ORDER_LEAKY_CALLEES = frozenset({"list", "tuple", "enumerate"})

#: Set-returning methods: a call of one of these on a set-valued receiver is
#: itself set-valued.
SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)


def content_hash(source: str) -> str:
    """Stable content hash of one file's source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def dotted(node: ast.AST) -> Optional[str]:
    """Dotted name of an attribute chain (``self.a.b``), else ``None``."""
    parts: List[str] = []
    cursor = node
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if isinstance(cursor, ast.Name):
        parts.append(cursor.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class ImportFact:
    """One name bound by an import statement."""

    alias: str  # name bound in the importing module ("" for wildcard)
    module: str  # absolute dotted module the binding comes from
    symbol: Optional[str]  # symbol inside module (None for `import module`)
    lineno: int
    wildcard: bool = False


@dataclass
class CallFact:
    """One call site, with enough shape to resolve and taint-propagate."""

    callee: str  # dotted callee as written ("helper", "self.run", "mod.f")
    lineno: int
    #: positional args: ("name", dotted) / ("call", callee) / None per slot
    args: List[Optional[Tuple[str, str]]] = field(default_factory=list)
    #: keyword args with the same classification
    kwargs: Dict[str, Optional[Tuple[str, str]]] = field(default_factory=dict)
    #: lock expressions held (innermost last) when the call is made
    held_locks: List[str] = field(default_factory=list)


@dataclass
class LockAcquire:
    """One ``with <lock>:`` acquisition and the locks already held there."""

    lock: str  # lock expression as written ("self._lock", "_REGISTRY_LOCK")
    lineno: int
    held: List[str] = field(default_factory=list)


@dataclass
class QuerySink:
    """A query-method call (``.predict`` & friends) and its receiver shape."""

    method: str
    lineno: int
    receiver: Optional[str] = None  # dotted receiver, when static
    receiver_call: Optional[str] = None  # callee when receiver is `f(...).predict`


@dataclass
class IterSite:
    """One place an iterable's order leaks into program state."""

    kind: str  # "inline" | "name" | "self_attr" | "call"
    value: str  # "" for inline, name / attr / dotted callee otherwise
    lineno: int
    context: str  # "for" | "comprehension" | "call:<name>"


@dataclass
class FunctionFacts:
    """Facts about one function or method (module-level qualname)."""

    qualname: str  # "func" or "Class.method" (nested defs dotted through)
    lineno: int
    end_lineno: int
    params: List[str] = field(default_factory=list)
    #: unparsed annotation text per annotated param
    param_annotations: Dict[str, str] = field(default_factory=dict)
    return_annotation: str = ""
    calls: List[CallFact] = field(default_factory=list)
    #: return value classifications: ("name", dotted)/("call", callee)/("set","")
    returns: List[Tuple[str, str]] = field(default_factory=list)
    lock_acquires: List[LockAcquire] = field(default_factory=list)
    tainted_locals: List[str] = field(default_factory=list)
    #: local name -> dotted callee of the call it was assigned from
    local_calls: Dict[str, str] = field(default_factory=dict)
    #: local name -> dotted name it aliases (callback refs: `cb = self._emit`)
    local_refs: Dict[str, str] = field(default_factory=dict)
    query_sinks: List[QuerySink] = field(default_factory=list)
    set_locals: List[str] = field(default_factory=list)
    iterations: List[IterSite] = field(default_factory=list)


@dataclass
class ClassFacts:
    """Facts about one class definition."""

    qualname: str
    lineno: int
    bases: List[str] = field(default_factory=list)
    methods: List[str] = field(default_factory=list)
    #: self.X = ClassName(...) -> X: dotted constructor name
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: self.X = threading.Lock()/RLock() -> X: "Lock" | "RLock"
    lock_attrs: Dict[str, str] = field(default_factory=dict)
    #: self.X assigned a set-valued expression somewhere in the class
    set_attrs: List[str] = field(default_factory=list)


@dataclass
class ModuleFacts:
    """Everything the program rules need to know about one module."""

    path: str
    module: str  # absolute dotted module name ("repro.engine.parallel")
    content_hash: str
    imports: List[ImportFact] = field(default_factory=list)
    functions: Dict[str, FunctionFacts] = field(default_factory=dict)
    classes: Dict[str, ClassFacts] = field(default_factory=dict)
    #: module-level NAME = Lock()/RLock() -> "Lock" | "RLock"
    module_locks: Dict[str, str] = field(default_factory=dict)
    #: module-level names bound to set-valued constants
    module_sets: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:  # repro: allow[dict-round-trip] asdict() emits every dataclass field by construction
        """JSON-safe snapshot (exact :meth:`from_dict` round-trip)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ModuleFacts":
        """Rebuild facts from :meth:`to_dict` output."""

        def _tuples(rows):
            return [tuple(row) if row is not None else None for row in rows]

        facts = cls(
            path=str(data["path"]),
            module=str(data["module"]),
            content_hash=str(data["content_hash"]),
            imports=[ImportFact(**row) for row in data.get("imports", [])],
            module_locks=dict(data.get("module_locks", {})),
            module_sets=list(data.get("module_sets", [])),
        )
        for name, raw in dict(data.get("functions", {})).items():
            fn = FunctionFacts(
                qualname=raw["qualname"],
                lineno=raw["lineno"],
                end_lineno=raw["end_lineno"],
                params=list(raw.get("params", [])),
                param_annotations=dict(raw.get("param_annotations", {})),
                return_annotation=raw.get("return_annotation", ""),
                returns=_tuples(raw.get("returns", [])),
                tainted_locals=list(raw.get("tainted_locals", [])),
                local_calls=dict(raw.get("local_calls", {})),
                local_refs=dict(raw.get("local_refs", {})),
                set_locals=list(raw.get("set_locals", [])),
            )
            for call in raw.get("calls", []):
                fn.calls.append(
                    CallFact(
                        callee=call["callee"],
                        lineno=call["lineno"],
                        args=_tuples(call.get("args", [])),
                        kwargs={
                            key: tuple(val) if val is not None else None
                            for key, val in call.get("kwargs", {}).items()
                        },
                        held_locks=list(call.get("held_locks", [])),
                    )
                )
            fn.lock_acquires = [LockAcquire(**row) for row in raw.get("lock_acquires", [])]
            fn.query_sinks = [QuerySink(**row) for row in raw.get("query_sinks", [])]
            fn.iterations = [IterSite(**row) for row in raw.get("iterations", [])]
            facts.functions[name] = fn
        for name, raw in dict(data.get("classes", {})).items():
            facts.classes[name] = ClassFacts(**raw)
        return facts


def _is_lockish(name: str) -> bool:
    return "lock" in name.lower()


def _lock_expr(node: ast.AST) -> Optional[str]:
    """Lock expression of a with-item when it looks lock-shaped."""
    name = dotted(node)
    if name is None:
        return None
    return name if _is_lockish(name.split(".")[-1]) else None


def _lock_ctor(node: ast.AST) -> Optional[str]:
    """``threading.Lock()`` / ``RLock()`` -> the lock kind, else ``None``."""
    if not isinstance(node, ast.Call):
        return None
    leaf = None
    if isinstance(node.func, ast.Attribute):
        leaf = node.func.attr
    elif isinstance(node.func, ast.Name):
        leaf = node.func.id
    return leaf if leaf in ("Lock", "RLock") else None


class _Extractor(ast.NodeVisitor):
    """One structured walk collecting every fact the program rules need."""

    def __init__(self, facts: ModuleFacts) -> None:
        self.facts = facts
        self._class_stack: List[ClassFacts] = []
        self._fn_stack: List[FunctionFacts] = []
        self._lock_stack: List[str] = []
        #: comprehension/generator nodes whose order cannot leak (they feed an
        #: order-insensitive reducer) or that are already sorted-wrapped
        self._order_safe: set = set()

    # ------------------------------------------------------------------ #
    # scope bookkeeping
    # ------------------------------------------------------------------ #
    def _qualprefix(self) -> str:
        parts = [cls.qualname for cls in self._class_stack[-1:]]
        parts += [fn.qualname for fn in self._fn_stack[-1:]]
        return parts[-1] if parts else ""

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        prefix = self._qualprefix()
        qualname = f"{prefix}.{node.name}" if prefix else node.name
        cls = ClassFacts(
            qualname=qualname,
            lineno=node.lineno,
            bases=[name for name in (dotted(base) for base in node.bases) if name],
        )
        self.facts.classes[qualname] = cls
        self._class_stack.append(cls)
        old_fns, self._fn_stack = self._fn_stack, []
        self.generic_visit(node)
        self._fn_stack = old_fns
        self._class_stack.pop()

    def _visit_function(self, node) -> None:
        prefix = self._qualprefix()
        qualname = f"{prefix}.{node.name}" if prefix else node.name
        params = [arg.arg for arg in node.args.posonlyargs + node.args.args]
        fn = FunctionFacts(
            qualname=qualname,
            lineno=node.lineno,
            end_lineno=int(getattr(node, "end_lineno", node.lineno) or node.lineno),
            params=params,
        )
        for arg in node.args.posonlyargs + node.args.args + node.args.kwonlyargs:
            if arg.annotation is not None:
                fn.param_annotations[arg.arg] = ast.unparse(arg.annotation)
        if node.returns is not None:
            fn.return_annotation = ast.unparse(node.returns)
        self.facts.functions[qualname] = fn
        if self._class_stack:
            self._class_stack[-1].methods.append(node.name)
        self._fn_stack.append(fn)
        old_locks, self._lock_stack = self._lock_stack, []
        for statement in node.body:
            self.visit(statement)
        self._lock_stack = old_locks
        self._fn_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # ------------------------------------------------------------------ #
    # imports
    # ------------------------------------------------------------------ #
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.facts.imports.append(
                ImportFact(
                    alias=alias.asname or alias.name.split(".")[0],
                    module=alias.name,
                    symbol=None,
                    lineno=node.lineno,
                )
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = self._resolve_relative(node.module or "", node.level)
        for alias in node.names:
            if alias.name == "*":
                self.facts.imports.append(
                    ImportFact(
                        alias="", module=base, symbol=None,
                        lineno=node.lineno, wildcard=True,
                    )
                )
                continue
            self.facts.imports.append(
                ImportFact(
                    alias=alias.asname or alias.name,
                    module=base,
                    symbol=alias.name,
                    lineno=node.lineno,
                )
            )

    def _resolve_relative(self, module: str, level: int) -> str:
        if level == 0:
            return module
        parts = self.facts.module.split(".")
        # level 1 = current package: a plain module drops its own name first,
        # but an __init__ IS its package and keeps it
        if not str(self.facts.path).endswith("__init__.py"):
            parts = parts[:-1]
        base = parts[: len(parts) - (level - 1)]
        if module:
            base.append(module)
        return ".".join(base)

    # ------------------------------------------------------------------ #
    # assignments: taint, set-typing, attr types, locks
    # ------------------------------------------------------------------ #
    def _classify_value(self, value: ast.AST) -> Optional[Tuple[str, str]]:
        if isinstance(value, ast.Call):
            callee = dotted(value.func)
            return ("call", callee) if callee else None
        name = dotted(value)
        return ("name", name) if name else None

    def _is_set_valued(self, value: ast.AST) -> bool:
        if isinstance(value, (ast.Set, ast.SetComp)):
            return True
        if isinstance(value, ast.Call):
            func = value.func
            leaf = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if leaf in ("set", "frozenset"):
                return True
            if leaf in SET_METHODS and isinstance(func, ast.Attribute):
                return self._is_set_valued_name(func.value) or self._is_set_valued(
                    func.value
                )
            return False
        if isinstance(value, ast.BinOp) and isinstance(
            value.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_valued(value.left) or self._is_set_valued(value.right)
        return self._is_set_valued_name(value)

    def _is_set_valued_name(self, value: ast.AST) -> bool:
        name = dotted(value)
        if name is None:
            return False
        if self._fn_stack and name in self._fn_stack[-1].set_locals:
            return True
        if name.startswith("self.") and self._class_stack:
            return name.split(".", 1)[1] in self._class_stack[-1].set_attrs
        return name in self.facts.module_sets

    def _record_assignment(self, target: ast.AST, value: ast.AST) -> None:
        name = dotted(target)
        if name is None or value is None:
            return
        lock_kind = _lock_ctor(value)
        set_valued = self._is_set_valued(value)
        classified = self._classify_value(value)
        if name.startswith("self.") and name.count(".") == 1 and self._class_stack:
            attr = name.split(".", 1)[1]
            cls = self._class_stack[-1]
            if lock_kind is not None:
                cls.lock_attrs[attr] = lock_kind
            elif set_valued:
                if attr not in cls.set_attrs:
                    cls.set_attrs.append(attr)
            elif isinstance(value, ast.Call):
                callee = dotted(value.func)
                if callee:
                    cls.attr_types.setdefault(attr, callee)
            return
        if "." in name:
            return
        if not self._fn_stack:
            if lock_kind is not None:
                self.facts.module_locks[name] = lock_kind
            elif set_valued and name not in self.facts.module_sets:
                self.facts.module_sets.append(name)
            return
        fn = self._fn_stack[-1]
        if set_valued:
            if name not in fn.set_locals:
                fn.set_locals.append(name)
        if classified is None:
            return
        kind, value_name = classified
        if kind == "name":
            if value_name.split(".")[-1] in MODELISH_NAMES:
                if name not in fn.tainted_locals:
                    fn.tainted_locals.append(name)
            else:
                fn.local_refs[name] = value_name
        elif kind == "call":
            fn.local_calls[name] = value_name

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_assignment(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_assignment(node.target, node.value)
        self.generic_visit(node)

    # ------------------------------------------------------------------ #
    # locks
    # ------------------------------------------------------------------ #
    def _visit_with(self, node) -> None:
        acquired: List[str] = []
        for item in node.items:
            lock = _lock_expr(item.context_expr)
            if lock is None:
                continue
            if self._fn_stack:
                self._fn_stack[-1].lock_acquires.append(
                    LockAcquire(
                        lock=lock, lineno=node.lineno, held=list(self._lock_stack)
                    )
                )
            self._lock_stack.append(lock)
            acquired.append(lock)
        for statement in node.body:
            self.visit(statement)
        for _ in acquired:
            self._lock_stack.pop()

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    # ------------------------------------------------------------------ #
    # calls: call graph, query sinks, order-safety contexts
    # ------------------------------------------------------------------ #
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        leaf = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if leaf in ORDER_SAFE_CALLEES:
            # comprehensions feeding an order-insensitive reducer are safe,
            # and everything under sorted() is safe by definition
            for arg in node.args:
                if leaf == "sorted" or isinstance(
                    arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)
                ):
                    self._order_safe.add(id(arg))
                if leaf == "sorted":
                    for sub in ast.walk(arg):
                        self._order_safe.add(id(sub))
        elif leaf in ORDER_LEAKY_CALLEES and node.args:
            self._record_iteration(node.args[0], node.lineno, f"call:{leaf}")

        if self._fn_stack:
            fn = self._fn_stack[-1]
            callee = dotted(func)
            if callee is not None:
                fn.calls.append(
                    CallFact(
                        callee=callee,
                        lineno=node.lineno,
                        args=[self._classify_value(arg) for arg in node.args],
                        kwargs={
                            kw.arg: self._classify_value(kw.value)
                            for kw in node.keywords
                            if kw.arg is not None
                        },
                        held_locks=list(self._lock_stack),
                    )
                )
            if isinstance(func, ast.Attribute) and func.attr in QUERY_METHODS:
                receiver = dotted(func.value)
                receiver_call = None
                if receiver is None and isinstance(func.value, ast.Call):
                    receiver_call = dotted(func.value.func)
                fn.query_sinks.append(
                    QuerySink(
                        method=func.attr,
                        lineno=node.lineno,
                        receiver=receiver,
                        receiver_call=receiver_call,
                    )
                )
        self.generic_visit(node)

    # ------------------------------------------------------------------ #
    # iteration-order sites
    # ------------------------------------------------------------------ #
    def _record_iteration(self, iterable: ast.AST, lineno: int, context: str) -> None:
        if not self._fn_stack or id(iterable) in self._order_safe:
            return
        fn = self._fn_stack[-1]
        if isinstance(iterable, (ast.Set, ast.SetComp)) or (
            isinstance(iterable, (ast.Call, ast.BinOp)) and self._is_set_valued(iterable)
        ):
            fn.iterations.append(
                IterSite(kind="inline", value="", lineno=lineno, context=context)
            )
            return
        name = dotted(iterable)
        if name is None:
            if isinstance(iterable, ast.Call):
                callee = dotted(iterable.func)
                if callee:
                    fn.iterations.append(
                        IterSite(
                            kind="call", value=callee, lineno=lineno, context=context
                        )
                    )
            return
        if name.startswith("self.") and name.count(".") == 1:
            fn.iterations.append(
                IterSite(
                    kind="self_attr",
                    value=name.split(".", 1)[1],
                    lineno=lineno,
                    context=context,
                )
            )
        elif "." not in name:
            fn.iterations.append(
                IterSite(kind="name", value=name, lineno=lineno, context=context)
            )

    def visit_For(self, node: ast.For) -> None:
        self._record_iteration(node.iter, node.lineno, "for")
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        if id(node) not in self._order_safe:
            for generator in node.generators:
                self._record_iteration(generator.iter, node.lineno, "comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # building a set *from* an iterable discards order by construction
        self.generic_visit(node)

    # ------------------------------------------------------------------ #
    # returns
    # ------------------------------------------------------------------ #
    def visit_Return(self, node: ast.Return) -> None:
        if self._fn_stack and node.value is not None:
            fn = self._fn_stack[-1]
            if self._is_set_valued(node.value):
                fn.returns.append(("set", ""))
            else:
                classified = self._classify_value(node.value)
                if classified is not None:
                    fn.returns.append(classified)
                else:
                    fn.returns.append(("other", ""))
        self.generic_visit(node)


def module_name_for(path) -> str:
    """Dotted module name of ``path``, derived from ``__init__.py`` packages.

    Walking up from the file, every parent directory containing an
    ``__init__.py`` contributes a package segment — which resolves both the
    real ``src/repro`` layout and throwaway fixture packages in tests without
    any configuration.
    """
    from pathlib import Path

    source = Path(path)
    parts = [source.stem] if source.stem != "__init__" else []
    cursor = source.parent
    while (cursor / "__init__.py").exists():
        parts.append(cursor.name)
        parent = cursor.parent
        if parent == cursor:
            break
        cursor = parent
    return ".".join(reversed(parts)) if parts else source.stem


def extract_facts(tree: ast.Module, source: str, path: str, module: Optional[str] = None) -> ModuleFacts:
    """Extract :class:`ModuleFacts` from one already-parsed module."""
    facts = ModuleFacts(
        path=str(path),
        module=module if module is not None else module_name_for(path),
        content_hash=content_hash(source),
    )
    _Extractor(facts).visit(tree)
    return facts


__all__ = [
    "ENGINE_TOKEN",
    "MODELISH_NAMES",
    "ORDER_LEAKY_CALLEES",
    "ORDER_SAFE_CALLEES",
    "QUERY_METHODS",
    "CallFact",
    "ClassFacts",
    "FunctionFacts",
    "ImportFact",
    "IterSite",
    "LockAcquire",
    "ModuleFacts",
    "QuerySink",
    "content_hash",
    "dotted",
    "extract_facts",
    "module_name_for",
]
