"""``repro.analysis.program`` — whole-program analysis for the linter.

The per-file rules (REP001–REP008) see one module at a time; the invariants
the codebase now lives by are cross-module: lock acquisition spans
``engine.parallel`` → ``faults.supervision`` → ``engine.transport``, model
objects flow through ``ExecutionPolicy.build_engine()`` across package
boundaries, and bit-identity depends on iteration-order discipline wherever
results merge.  This package parses the tree once into per-module
:class:`~.facts.ModuleFacts`, assembles a :class:`~.graph.ProgramGraph`
(symbol table + call graph + lock graph + taint fixpoints) and runs the
registered :class:`~.registry.ProgramRule` set (REP009 lock-ordering,
REP010 interprocedural funnel escape, REP011 iteration-order
nondeterminism) over it.

Per-file work — parse, per-file rules, fact extraction, pragma maps — is
cached on disk by content hash (:class:`~.cache.ProgramCache`), so a warm
``python -m repro lint`` re-analyzes only changed files; cold runs can fan
parsing across a process pool.  Whole-program resolution is recomputed from
the cached facts every run: it is cheap, and global findings have no single
owning file to cache them under.
"""

from .build import (
    MIN_FILES_FOR_POOL,
    ProgramAnalysis,
    analyze_program,
)
from .cache import (
    CACHE_VERSION,
    DEFAULT_CACHE_DIR,
    FileRecord,
    ProgramCache,
    analysis_fingerprint,
)
from .facts import (
    ClassFacts,
    FunctionFacts,
    ImportFact,
    ModuleFacts,
    content_hash,
    extract_facts,
    module_name_for,
)
from .graph import ProgramGraph, SymbolRef, build_graph
from .registry import (
    ProgramRule,
    default_program_rules,
    register_program_rule,
    registered_program_rules,
)

__all__ = [
    "CACHE_VERSION",
    "DEFAULT_CACHE_DIR",
    "MIN_FILES_FOR_POOL",
    "ClassFacts",
    "FileRecord",
    "FunctionFacts",
    "ImportFact",
    "ModuleFacts",
    "ProgramAnalysis",
    "ProgramCache",
    "ProgramGraph",
    "ProgramRule",
    "SymbolRef",
    "analysis_fingerprint",
    "analyze_program",
    "build_graph",
    "content_hash",
    "default_program_rules",
    "extract_facts",
    "module_name_for",
    "register_program_rule",
    "registered_program_rules",
]
