"""Inline suppression pragmas: ``# repro: allow[rule-id]``.

A pragma acknowledges one specific violation where the code is *intentionally*
outside a contract — e.g. the gradient attack reads the raw model because the
paper's whitebox baseline is defined that way.  The pragma should always ride
with a short justification comment so the next reader knows why:

    gradient = model.loss_input_gradient(x, y)  # repro: allow[engine-funnel] whitebox by design

Rules are named by id (``REP001``) or slug (``engine-funnel``); several may be
listed comma-separated, and ``allow[*]`` suppresses every rule.  A pragma on a
comment-only line applies to the next line that contains code, so long
justifications can sit above the statement they bless.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, Set

#: Matches the pragma anywhere inside a comment token.
PRAGMA_PATTERN = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")


def _parse_ids(raw: str) -> Set[str]:
    return {part.strip().lower() for part in raw.split(",") if part.strip()}


def collect_pragmas(source: str) -> Dict[int, Set[str]]:
    """Map line number -> set of allowed rule ids/slugs (lower-cased).

    Comments are found with :mod:`tokenize` so pragmas inside string literals
    are never misread; on tokenization failure (the file will produce a parse
    finding anyway) a conservative per-line regex scan is used instead.
    """
    lines = source.splitlines()
    comment_hits = []  # (line, ids, standalone)
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = PRAGMA_PATTERN.search(token.string)
            if match is None:
                continue
            line = token.start[0]
            text = lines[line - 1] if line <= len(lines) else ""
            standalone = text.lstrip().startswith("#")
            comment_hits.append((line, _parse_ids(match.group(1)), standalone))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for index, text in enumerate(lines, start=1):
            match = PRAGMA_PATTERN.search(text)
            if match is not None:
                comment_hits.append(
                    (index, _parse_ids(match.group(1)), text.lstrip().startswith("#"))
                )

    pragmas: Dict[int, Set[str]] = {}
    for line, ids, standalone in comment_hits:
        target = line
        if standalone:
            # a comment-only pragma blesses the next line holding code
            cursor = line + 1
            while cursor <= len(lines):
                stripped = lines[cursor - 1].strip()
                if stripped and not stripped.startswith("#"):
                    target = cursor
                    break
                cursor += 1
        pragmas.setdefault(target, set()).update(ids)
    return pragmas


def is_suppressed(pragmas: Dict[int, Set[str]], line: int, rule_id: str, name: str) -> bool:
    """Whether a finding of ``rule_id``/``name`` on ``line`` is pragma-allowed."""
    allowed = pragmas.get(line)
    if not allowed:
        return False
    return "*" in allowed or rule_id.lower() in allowed or name.lower() in allowed


def expand_decorated_pragmas(tree, pragmas: Dict[int, Set[str]]) -> Dict[int, Set[str]]:
    """Attach pragmas to the whole decorated statement span.

    Decorators split one logical statement across several lines: a rule may
    report at the ``def``/``class`` line while the pragma the author wrote
    sits on (or blesses, via the standalone-comment form) the first
    ``@decorator`` line — or vice versa.  Treat the span from the first
    decorator through the ``def`` line as one statement: pragma ids found on
    any line of the span apply to every line of the span.
    """
    import ast

    expanded = {line: set(ids) for line, ids in pragmas.items()}
    for node in ast.walk(tree):
        decorators = getattr(node, "decorator_list", None)
        if not decorators:
            continue
        span_start = min(dec.lineno for dec in decorators)
        span_end = node.lineno  # the `def`/`class` line itself
        ids: Set[str] = set()
        for line in range(span_start, span_end + 1):
            ids |= pragmas.get(line, set())
        if not ids:
            continue
        for line in range(span_start, span_end + 1):
            expanded.setdefault(line, set()).update(ids)
    return expanded


__all__ = [
    "PRAGMA_PATTERN",
    "collect_pragmas",
    "expand_decorated_pragmas",
    "is_suppressed",
]

