"""Rule protocol, registry and the single-pass AST walker.

The analyzer parses every file exactly once and walks the tree exactly once,
dispatching each node to every registered rule that declares a matching
``visit_<NodeType>`` method — adding a rule never adds a parse or a traversal.
Rules receive a :class:`ModuleContext` and report through it, so the framework
owns finding bookkeeping, pragma suppression and ordering.

The framework is deliberately self-contained (stdlib only): the lint CI job
must stay fast and must never be broken by the scientific stack.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Type

from ..exceptions import ConfigurationError
from .findings import Finding, sort_findings
from .pragmas import collect_pragmas, is_suppressed

#: Pseudo-rule used for files the analyzer cannot parse.
PARSE_RULE_ID = "REP000"
PARSE_RULE_NAME = "parse-error"


class Rule:
    """Base class of every lint rule.

    Subclasses set the class attributes below and implement one or more
    ``visit_<NodeType>(self, node, ctx)`` methods (``visit_Call``,
    ``visit_ClassDef``, ...).  Rules must be stateless across modules — any
    per-module bookkeeping belongs in local variables of the visit method
    (both class-scoped rules here work on the ``ClassDef`` subtree they are
    handed, which makes them naturally self-contained).
    """

    rule_id: str = ""
    name: str = ""
    severity: str = "error"
    description: str = ""

    def applies_to(self, path: str) -> bool:
        """Whether the rule runs on ``path`` at all (default: everywhere)."""
        return True


@dataclass
class ModuleContext:
    """Per-module state handed to every rule callback."""

    path: str
    findings: List[Finding] = field(default_factory=list)

    def report(
        self, rule: Rule, node: ast.AST, message: str, hint: str = ""
    ) -> None:
        """Record one violation of ``rule`` at ``node``."""
        self.findings.append(
            Finding(
                rule=rule.rule_id,
                name=rule.name,
                severity=rule.severity,
                path=self.path,
                line=int(getattr(node, "lineno", 1)),
                col=int(getattr(node, "col_offset", 0)),
                message=message,
                hint=hint,
            )
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry (id-unique)."""
    if not cls.rule_id or not cls.name:
        raise ConfigurationError(f"{cls.__name__} must define rule_id and name")
    existing = _REGISTRY.get(cls.rule_id)
    if existing is not None and existing is not cls:
        raise ConfigurationError(
            f"duplicate rule id {cls.rule_id}: {existing.__name__} vs {cls.__name__}"
        )
    _REGISTRY[cls.rule_id] = cls
    return cls


def registered_rules() -> Dict[str, Type[Rule]]:
    """Registered rule classes keyed by id (the shipped rules auto-register)."""
    _load_builtin_rules()
    return dict(_REGISTRY)


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in id order."""
    return [cls() for _, cls in sorted(registered_rules().items())]


def _load_builtin_rules() -> None:
    # importing the package registers every built-in rule exactly once
    from . import rules as _rules  # noqa: F401


# --------------------------------------------------------------------------- #
# the walker
# --------------------------------------------------------------------------- #
def parse_source(source: str, path: str):
    """Parse one module: ``(tree, None)`` or ``(None, parse Finding)``.

    This is the *single* parse of a file — the per-file rule dispatch, the
    program-graph fact extraction and the pragma span expansion all reuse
    the tree it returns.
    """
    posix = str(Path(path).as_posix())
    try:
        return ast.parse(source, filename=path), None
    except SyntaxError as exc:
        return None, Finding(
            rule=PARSE_RULE_ID,
            name=PARSE_RULE_NAME,
            severity="error",
            path=posix,
            line=int(exc.lineno or 1),
            col=int(exc.offset or 0),
            message=f"file does not parse: {exc.msg}",
            hint="the analyzer (and python) must be able to parse every module",
        )


def run_file_rules(
    tree: ast.Module, path: str, rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """One walk of an already-parsed module; returns *unfiltered* findings."""
    active = list(rules) if rules is not None else default_rules()
    ctx = ModuleContext(path=str(Path(path).as_posix()))

    # one dispatch table per run: rule -> {node type name -> bound method}
    dispatch = []
    for rule in active:
        if not rule.applies_to(ctx.path):
            continue
        methods = {
            attr[len("visit_"):]: getattr(rule, attr)
            for attr in dir(type(rule))
            if attr.startswith("visit_")
        }
        if methods:
            dispatch.append((rule, methods))

    for node in ast.walk(tree):
        node_type = type(node).__name__
        for _rule, methods in dispatch:
            visitor = methods.get(node_type)
            if visitor is not None:
                visitor(node, ctx)
    return ctx.findings


def analyze_source(
    source: str,
    path: str,
    rules: Optional[Sequence[Rule]] = None,
    program_rules: Optional[Sequence] = None,
) -> List[Finding]:
    """Analyze one module's source text; returns pragma-filtered findings.

    The whole-program rules run too, over a single-module program — so
    cross-function properties inside one file (a lock-order inversion
    between two methods, a set iterated two functions away) are visible
    even without a multi-file tree.
    """
    kept, _suppressed = _analyze_module(
        source, path, rules=rules, program_rules=program_rules
    )
    return kept


def _analyze_module(
    source: str,
    path: str,
    rules: Optional[Sequence[Rule]] = None,
    program_rules: Optional[Sequence] = None,
) -> tuple:
    """One parse, shared by every rule: ``(kept findings, suppressed)``."""
    from .pragmas import expand_decorated_pragmas
    from .program.facts import extract_facts
    from .program.graph import build_graph
    from .program.registry import default_program_rules

    posix = str(Path(path).as_posix())
    tree, parse_failure = parse_source(source, path)
    if tree is None:
        return [parse_failure], 0

    findings = list(run_file_rules(tree, posix, rules))
    facts = extract_facts(tree, source, posix)
    graph = build_graph([facts])
    active_program = (
        list(program_rules) if program_rules is not None else default_program_rules()
    )
    for rule in active_program:
        findings.extend(rule.check(graph))

    pragmas = expand_decorated_pragmas(tree, collect_pragmas(source))
    kept = [
        finding
        for finding in findings
        if not is_suppressed(pragmas, finding.line, finding.rule, finding.name)
    ]
    return sort_findings(kept), len(findings) - len(kept)


@dataclass
class LintResult:
    """Outcome of analyzing a set of paths."""

    findings: List[Finding]
    files_scanned: int
    suppressed: int
    #: files parsed this run (everything on a cold/uncached run)
    reparsed: List[str] = field(default_factory=list)
    #: reparsed files plus their reverse import closure — the set whose
    #: whole-program findings this run's changes could have affected
    invalidated: List[str] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files pass through directly)."""
    seen = set()
    for raw in paths:
        root = Path(raw)
        if not root.exists():
            raise ConfigurationError(f"no such path: {root}")
        candidates = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for candidate in candidates:
            if candidate.suffix != ".py":
                continue
            if any(part.startswith(".") or part == "__pycache__" for part in candidate.parts):
                continue
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            yield candidate


def analyze_paths(
    paths: Iterable[str],
    rules: Optional[Sequence[Rule]] = None,
    program_rules: Optional[Sequence] = None,
    cache_dir: Optional[str] = None,
    jobs: int = 1,
) -> LintResult:
    """Analyze every Python file under ``paths`` as one program.

    Files are parsed exactly once each (or not at all when ``cache_dir``
    holds a warm content-hash cache); the per-file rules and the
    whole-program rules both run over that single shared parse.
    """
    from .program.build import analyze_program

    analysis = analyze_program(
        paths,
        rules=rules,
        program_rules=program_rules,
        cache_dir=cache_dir,
        jobs=jobs,
    )
    return analysis.lint_result()


__all__ = [
    "PARSE_RULE_ID",
    "PARSE_RULE_NAME",
    "Rule",
    "ModuleContext",
    "register_rule",
    "registered_rules",
    "default_rules",
    "analyze_source",
    "analyze_paths",
    "iter_python_files",
    "parse_source",
    "run_file_rules",
    "LintResult",
]
