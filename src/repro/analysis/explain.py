"""``python -m repro lint --explain REP00X`` — rule rationale on demand.

Every rule class carries its own documentation: the class docstring states
*why* the contract exists, an ``Example::`` block shows a violation, and a
``Fix::`` block shows the sanctioned alternative.  This module parses those
sections out of the docstring (single source of truth — the explanation can
never drift from the code that enforces it) and formats them for the
terminal.
"""

from __future__ import annotations

import inspect
import textwrap
from typing import Dict, List, Optional

from ..exceptions import ConfigurationError

#: Docstring section markers, in the order they must appear.
_SECTION_MARKERS = ("Example::", "Fix::")


def rule_doc_sections(cls: type) -> Dict[str, str]:
    """Split a rule class docstring into rationale / example / fix.

    The rationale is everything before ``Example::``; the example and fix are
    the (dedented) literal blocks following their markers.  Missing markers
    simply yield empty sections, so partially-documented rules still explain
    what they can.
    """
    doc = inspect.cleandoc(cls.__doc__ or "")
    sections = {"rationale": doc, "example": "", "fix": ""}
    head, _, tail = doc.partition("Example::")
    if tail:
        sections["rationale"] = head.rstrip()
        example, _, fix = tail.partition("Fix::")
        sections["example"] = textwrap.dedent(example).strip("\n")
        sections["fix"] = textwrap.dedent(fix).strip("\n")
    else:
        head, _, fix = doc.partition("Fix::")
        if fix:
            sections["rationale"] = head.rstrip()
            sections["fix"] = textwrap.dedent(fix).strip("\n")
    return sections


def _all_rules() -> List[object]:
    from .program.registry import default_program_rules
    from .walker import default_rules

    return list(default_rules()) + list(default_program_rules())


def find_rule(query: str) -> object:
    """Rule instance matching an id (``REP009``) or slug (``lock-ordering``)."""
    wanted = query.strip().lower()
    rules = _all_rules()
    for rule in rules:
        if rule.rule_id.lower() == wanted or rule.name.lower() == wanted:
            return rule
    known = ", ".join(f"{rule.rule_id}[{rule.name}]" for rule in rules)
    raise ConfigurationError(f"unknown rule {query!r}; known rules: {known}")


def _indent(block: str) -> str:
    return textwrap.indent(block, "    ")


def explain_rule(query: str) -> str:
    """Terminal-formatted explanation of one rule."""
    rule = find_rule(query)
    sections = rule_doc_sections(type(rule))
    lines: List[str] = [
        f"{rule.rule_id} [{rule.name}] ({rule.severity})",
        f"  {rule.description}",
        "",
    ]
    if sections["rationale"]:
        lines.append(sections["rationale"])
        lines.append("")
    if sections["example"]:
        lines += ["Example:", _indent(sections["example"]), ""]
    if sections["fix"]:
        lines += ["Fix:", _indent(sections["fix"]), ""]
    lines.append(
        f"Suppress one justified site with: # repro: allow[{rule.name}] <why>"
    )
    return "\n".join(lines)


__all__ = ["explain_rule", "find_rule", "rule_doc_sections"]
