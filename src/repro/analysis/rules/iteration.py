"""REP011 — iteration-order nondeterminism: sets must not order results.

Python sets iterate in hash order, and hash order is a function of
``PYTHONHASHSEED`` and insertion history — two runs of the same campaign can
walk the same set differently.  That is harmless while the consumer is
order-insensitive (``sum``, ``sorted``, membership), and catastrophically
quiet while it is not: merged per-shard stats accumulate floats in a
different order, serialized artifacts list keys in a different order, shard
planning hands different workers different examples.  Every one of those
breaks the bit-identity contract without failing a single assertion.

The facts layer records each place an iterable's order can leak — ``for``
loops, order-preserving comprehensions, ``list()``/``tuple()``/
``enumerate()`` materializations — *except* those feeding an
order-insensitive reducer (``sorted``/``sum``/``any``/``all``/``min``/
``max``/``len``/``set``/``frozenset``), which the extractor marks safe.
This rule classifies each remaining site's iterable as set-valued or not,
using whole-program knowledge where the per-file view is blind: locals built
as sets, parameters annotated ``Set[...]``, module-level set constants
resolved through imports, ``self`` attributes assigned sets anywhere in the
class, and calls resolved (cross-module, through the call graph) into
functions that transitively return sets.
"""

from __future__ import annotations

from typing import List

from ..findings import Finding
from ..program.facts import FunctionFacts, ModuleFacts
from ..program.graph import ProgramGraph
from ..program.registry import ProgramRule, register_program_rule

#: Parameter annotations that type a parameter as a set.
_SET_ANNOTATIONS = ("set", "frozenset")


def _annotation_is_set(annotation: str) -> bool:
    text = annotation.strip().lower()
    if text.startswith("typing."):
        text = text[len("typing."):]
    if text in _SET_ANNOTATIONS:
        return True
    return text.startswith(("set[", "frozenset[", "abstractset[", "mutableset["))


@register_program_rule
class IterationOrderRule(ProgramRule):
    """Set iteration order is an accident of ``PYTHONHASHSEED`` and insertion
    history, so any set whose iteration order reaches program output — merged
    statistics, serialized artifacts, shard plans — silently breaks the
    bit-identical-rerun contract.  The rule classifies every order-leaking
    iteration site (``for``, order-preserving comprehensions, ``list()``/
    ``tuple()``/``enumerate()``) whose iterable is set-valued, resolving
    names, annotations, attributes and call returns across modules; sites
    feeding order-insensitive reducers (``sorted``, ``sum``, ``any``, ...)
    are exempt by construction.

    Example::

        def merge(self):
            for shard_id in self.pending:      # self.pending = set(...)
                self._absorb(shard_id)         # float adds: order-dependent

    Fix::

        for shard_id in sorted(self.pending):  # fix the order explicitly
            self._absorb(shard_id)
        # or prove the consumer commutes and say so:
        # repro: allow[iteration-order] pure membership test, order-free
    """

    rule_id = "REP011"
    name = "iteration-order"
    severity = "error"
    description = (
        "unordered set/dict iteration feeding merged stats, serialized "
        "artifacts or shard planning (hash-order nondeterminism)"
    )

    def check(self, program: ProgramGraph) -> List[Finding]:
        findings: List[Finding] = []
        returns_set = program.returns_set()
        for facts, fn in program.functions():
            for site in fn.iterations:
                why = self._set_valued_reason(program, facts, fn, site, returns_set)
                if why is None:
                    continue
                shape = (
                    f"{site.context} over {why}"
                    if site.context in ("for", "comprehension")
                    else f"{site.context.split(':', 1)[1]}() materializes {why}"
                )
                findings.append(
                    self.finding(
                        facts.path,
                        site.lineno,
                        f"{shape}: set iteration order is hash-seed dependent, "
                        "so whatever this produces differs between runs",
                        hint="iterate sorted(...) (or prove the consumer is "
                        "order-insensitive and justify with "
                        "# repro: allow[iteration-order])",
                    )
                )
        return findings

    # ------------------------------------------------------------------ #
    def _set_valued_reason(
        self,
        program: ProgramGraph,
        facts: ModuleFacts,
        fn: FunctionFacts,
        site,
        returns_set,
    ):
        """Why the site's iterable is a set, as display text — or ``None``."""
        if site.kind == "inline":
            return "an inline set expression"
        if site.kind == "name":
            name = site.value
            if name in fn.set_locals:
                return f"set-valued local {name!r}"
            annotation = fn.param_annotations.get(name)
            if name in fn.params and annotation and _annotation_is_set(annotation):
                return f"parameter {name!r} (annotated {annotation})"
            ref = program.resolve(facts.module, name)
            if ref is not None and ref.kind == "value":
                target = program.modules.get(ref.module)
                if target is not None and ref.qualname in target.module_sets:
                    return f"module-level set constant {ref.module}.{ref.qualname}"
            if name in fn.local_calls:
                ref = program.resolve_call(facts, fn, fn.local_calls[name])
                if ref is not None and (ref.module, ref.qualname) in returns_set:
                    return (
                        f"{name!r} (set returned by {fn.local_calls[name]}())"
                    )
            return None
        if site.kind == "self_attr":
            cls_name = program.enclosing_class(fn)
            if cls_name is None:
                return None
            cls = program.class_of(facts.module, cls_name)
            if cls is not None and site.value in cls.set_attrs:
                return f"set-valued attribute self.{site.value}"
            return None
        if site.kind == "call":
            ref = program.resolve_call(facts, fn, site.value)
            if ref is not None and (ref.module, ref.qualname) in returns_set:
                return f"the set returned by {site.value}()"
            # set.union(...) & friends on a known-set receiver
            receiver, _, method = site.value.rpartition(".")
            if method in ("union", "intersection", "difference",
                          "symmetric_difference", "copy") and receiver:
                fake = type(site)(
                    kind="self_attr" if receiver.startswith("self.") else "name",
                    value=receiver.split(".", 1)[1]
                    if receiver.startswith("self.")
                    else receiver,
                    lineno=site.lineno,
                    context=site.context,
                )
                inner = self._set_valued_reason(program, facts, fn, fake, returns_set)
                if inner is not None:
                    return f"{site.value}() on {inner}"
        return None


__all__ = ["IterationOrderRule"]
