"""REP003 — no internal use of the PR-5-deprecated execution knobs.

PR 5 collapsed the per-subsystem execution knobs (``engine=``,
``num_workers=``, ``use_query_cache=``, ``cache_dir=``, ``checkpoint_every=``)
into one ``policy=ExecutionPolicy(...)`` parameter, keeping the old knobs as
deprecation shims.  The pytest ``filterwarnings`` gate errors when an internal
caller *exercises* a shim — but only on paths a test actually runs.  This rule
closes the gap statically: any call that passes a legacy knob to one of the
known shim owners is flagged, dead branches included.

The knobs are only illegal *as legacy shims*: ``ExecutionPolicy(num_workers=4)``
or ``ShardedQueryEngine(num_workers=2)`` are the real, non-deprecated surface
and stay untouched — which is why the rule matches (owner, knob) pairs instead
of bare keyword names.
"""

from __future__ import annotations

import ast

from ..walker import ModuleContext, Rule, register_rule
from .common import callee_basename

#: The deprecated keyword names (PR-5 list) and the policy field replacing each.
LEGACY_KNOBS = {
    "engine": "backend",
    "num_workers": "num_workers",
    "use_query_cache": "cache",
    "cache_dir": "cache_dir",
    "checkpoint_every": "checkpoint_every",
}

#: Callables that still accept the knobs as deprecation shims.  Matching is by
#: terminal name (``FuzzerConfig(...)``, ``scenario.query_engine(...)``).
SHIM_OWNERS = frozenset(
    {
        "FuzzerConfig",
        "WorkflowConfig",
        "OperationalFuzzer",
        "OperationalTestingLoop",
        "ReliabilityAssessor",
        "CellRobustnessEvaluator",
        "RandomFuzz",
        "GaussianNoise",
        "BoundaryNudge",
        "query_engine",
        "build_query_engine",
        "query_engine_session",
    }
)


@register_rule
class LegacyKnobRule(Rule):
    """The deprecated per-call execution knobs (``engine=``, ``num_workers=``,
    ...) still work through compatibility shims, but each internal use is one
    more place execution configuration can disagree with the single
    ``ExecutionPolicy`` the run was launched with — the exact drift the
    policy refactor exists to prevent.

    Example::

        campaign = Campaign(model, engine="sharded", num_workers=4)

    Fix::

        policy = ExecutionPolicy(mode="sharded", workers=4)
        campaign = Campaign(model, policy=policy)
    """

    rule_id = "REP003"
    name = "legacy-knob"
    severity = "error"
    description = (
        "internal call passes a deprecated execution knob to a shim owner "
        "instead of policy=ExecutionPolicy(...)"
    )

    def applies_to(self, path: str) -> bool:
        # the shims themselves (and their fold-in helper) live in runtime/
        return "repro/runtime/" not in path

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        owner = callee_basename(node)
        if owner not in SHIM_OWNERS:
            return
        for keyword in node.keywords:
            if keyword.arg in LEGACY_KNOBS:
                ctx.report(
                    self,
                    node,
                    f"{owner}({keyword.arg}=...) exercises a deprecated "
                    "execution knob (legacy shim) from inside repro.*",
                    hint=f"pass policy=ExecutionPolicy({LEGACY_KNOBS[keyword.arg]}=...) instead",
                )


__all__ = ["LegacyKnobRule"]
