"""REP004 — lock discipline: guarded state is guarded everywhere.

The ``ShardedQueryEngine._absorb`` merge is the canonical instance: per-shard
``QueryStats`` deltas merge into shared counters under ``self._lock``, and the
equivalence suites only hold because *every* mutation of that state takes the
same lock.  The race class this rule targets is the subtle one-step regression:
a new method reads or mutates an attribute that the rest of the class only
ever touches inside ``with self._lock:`` — correct today because today's
callers are single-threaded, silently racy the day they are not.

Per class, the rule computes the set of attributes *mutated* under a lock
block (assigned, aug-assigned, subscript-assigned, or used as the receiver of
a method call — ``self.stats.merge(...)`` counts), then flags every lock-free
access to one of those attributes from a *different* method.  ``__init__`` and
friends are exempt: construction happens before the object is shared.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from ..walker import ModuleContext, Rule, register_rule

#: Methods that run before the instance can be shared across threads.
CONSTRUCTION_METHODS = frozenset({"__init__", "__new__", "__post_init__", "__del__"})


def _lock_attr_name(item: ast.withitem) -> str:
    """Lock attribute name when the with-item is ``self.<something lock>``."""
    expr = item.context_expr
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and "lock" in expr.attr.lower()
    ):
        return expr.attr
    return ""


def _self_attr(node: ast.AST) -> str:
    """``self.X`` -> ``"X"`` (else empty)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return ""


class _MethodScan(ast.NodeVisitor):
    """Classify every ``self.X`` access in one method by lock context."""

    def __init__(self) -> None:
        self.lock_depth = 0
        self.lock_names: Set[str] = set()
        #: attr -> mutated under lock?
        self.guarded_mutations: Set[str] = set()
        #: (attr, node) accesses outside any lock block
        self.free_accesses: List[Tuple[str, ast.AST]] = []

    def visit_With(self, node: ast.With) -> None:
        locked = [name for name in (_lock_attr_name(item) for item in node.items) if name]
        self.lock_names.update(locked)
        if locked:
            self.lock_depth += 1
        self.generic_visit(node)
        if locked:
            self.lock_depth -= 1

    visit_AsyncWith = visit_With

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        # a nested class is its own locking domain
        return

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = _self_attr(node)
        if attr and "lock" not in attr.lower():
            if self.lock_depth > 0:
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    self.guarded_mutations.add(attr)
            else:
                self.free_accesses.append((attr, node))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # self.X.method(...) mutates X for our purposes (merge/append/pop/...)
        if self.lock_depth > 0 and isinstance(node.func, ast.Attribute):
            attr = _self_attr(node.func.value)
            if attr and "lock" not in attr.lower():
                self.guarded_mutations.add(attr)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # self.X[k] = v / del self.X[k] mutates X
        if self.lock_depth > 0 and isinstance(node.ctx, (ast.Store, ast.Del)):
            attr = _self_attr(node.value)
            if attr and "lock" not in attr.lower():
                self.guarded_mutations.add(attr)
        self.generic_visit(node)


@register_rule
class LockDisciplineRule(Rule):
    """An attribute mutated under ``with self._lock:`` in one method and read
    lock-free in another is a data race with a long fuse: the torn read only
    happens under real worker concurrency, typically as a slightly-wrong
    merged statistic rather than a crash.  If one access point needs the
    lock, every access point does.

    Example::

        def record(self):
            with self._lock:
                self._counts[key] += 1
        def snapshot(self):
            return dict(self._counts)      # lock-free read of guarded state

    Fix::

        def snapshot(self):
            with self._lock:               # same guard on every touch
                return dict(self._counts)
    """

    rule_id = "REP004"
    name = "lock-discipline"
    severity = "error"
    description = (
        "attribute mutated under `with self._lock:` in one method but "
        "accessed lock-free in another (stats-merge race class)"
    )

    def visit_ClassDef(self, node: ast.ClassDef, ctx: ModuleContext) -> None:
        methods = [
            statement
            for statement in node.body
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        scans: Dict[str, _MethodScan] = {}
        for method in methods:
            scan = _MethodScan()
            for statement in method.body:
                scan.visit(statement)
            scans[method.name] = scan

        guarded_by: Dict[str, str] = {}  # attr -> first method guarding it
        for method in methods:
            for attr in scans[method.name].guarded_mutations:
                guarded_by.setdefault(attr, method.name)
        if not guarded_by:
            return

        for method in methods:
            if method.name in CONSTRUCTION_METHODS:
                continue
            for attr, access in scans[method.name].free_accesses:
                owner = guarded_by.get(attr)
                if owner is None or owner == method.name:
                    continue
                ctx.report(
                    self,
                    access,
                    f"{node.name}.{method.name} touches self.{attr} without the "
                    f"lock that guards its mutation in {node.name}.{owner}",
                    hint="take the same lock (or document why the access is "
                    "safe with # repro: allow[lock-discipline])",
                )


__all__ = ["LockDisciplineRule"]
