"""The repo-specific invariant rules.

Importing this package registers every built-in rule with the walker's
registry.  Each rule guards one contract the reproduction's correctness story
depends on:

========  ================  ====================================================
id        slug              contract
========  ================  ====================================================
REP001    engine-funnel     all model traffic flows through
                            ``ExecutionPolicy.build_engine()`` → ``ModelBackend``
REP002    rng-discipline    no global-state NumPy RNG; every stochastic call
                            takes a seeded ``Generator``
REP003    legacy-knob       no internal use of the PR-5-deprecated execution
                            knobs (``engine=``/``num_workers=``/…)
REP004    lock-discipline   attributes mutated under a ``self._lock`` block are
                            never touched lock-free elsewhere in the class
REP005    dict-round-trip   ``to_dict``/``from_dict`` pairs agree on their key
                            set (serialization cannot drift silently)
REP006    timeout-discipline no unbounded cross-process waits (bare
                            ``future.result()``/``queue.get()``) or raw
                            executor dispatch outside ``repro.faults``
REP007    shm-lifecycle     no ``SharedMemory`` creation without paired
                            ``unlink()``/``close()`` cleanup (leaked segments
                            outlive the process)
REP008    clock-discipline  no wall-clock reads (``time.time()``/
                            ``datetime.now()``/…) outside ``repro.telemetry``;
                            durations/deadlines stay monotonic
========  ================  ====================================================

REP001–REP008 are per-file rules (one module at a time); REP009–REP011 are
whole-program rules run over the cross-module
:class:`~repro.analysis.program.graph.ProgramGraph`:

========  ================  ====================================================
id        slug              contract
========  ================  ====================================================
REP009    lock-ordering     the cross-module lock-acquisition graph is acyclic
                            and no thread re-acquires a non-reentrant lock it
                            already holds (static deadlock detection)
REP010    funnel-escape     model-typed values cannot dodge the engine funnel
                            through helpers, returns or engine-named
                            parameters (interprocedural REP001)
REP011    iteration-order   no unordered set iteration feeds merged stats,
                            serialized artifacts or shard planning
                            (hash-order nondeterminism)
========  ================  ====================================================
"""

from .clocks import ClockDisciplineRule
from .flow import FunnelEscapeRule
from .funnel import EngineFunnelRule
from .iteration import IterationOrderRule
from .knobs import LegacyKnobRule
from .lockorder import LockOrderingRule
from .locks import LockDisciplineRule
from .rng import RngDisciplineRule
from .roundtrip import DictRoundTripRule
from .shm import ShmLifecycleRule
from .timeouts import TimeoutDisciplineRule

__all__ = [
    "EngineFunnelRule",
    "RngDisciplineRule",
    "LegacyKnobRule",
    "LockDisciplineRule",
    "DictRoundTripRule",
    "TimeoutDisciplineRule",
    "ShmLifecycleRule",
    "ClockDisciplineRule",
    "LockOrderingRule",
    "FunnelEscapeRule",
    "IterationOrderRule",
]
