"""Small AST helpers shared by the invariant rules (stdlib only)."""

from __future__ import annotations

import ast
from typing import List, Optional


def dotted_name(node: ast.AST) -> Optional[str]:
    """Dotted receiver name of an attribute chain, or ``None`` if dynamic.

    ``self.model`` -> ``"self.model"``; ``np.random.seed`` ->
    ``"np.random.seed"``; anything rooted at a call/subscript (``f().x``)
    is dynamic and returns ``None``.
    """
    parts: List[str] = []
    cursor = node
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if isinstance(cursor, ast.Name):
        parts.append(cursor.id)
        return ".".join(reversed(parts))
    return None


def callee_basename(call: ast.Call) -> Optional[str]:
    """Terminal name of a call target: ``a.b.F(...)`` and ``F(...)`` -> ``"F"``."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def class_field_names(class_node: ast.ClassDef) -> List[str]:
    """Names annotated at class-body level (the dataclass field declarations).

    ``ClassVar``-annotated names are skipped, mirroring what
    :func:`dataclasses.fields` would report.
    """
    names: List[str] = []
    for statement in class_node.body:
        if not isinstance(statement, ast.AnnAssign):
            continue
        if not isinstance(statement.target, ast.Name):
            continue
        annotation = ast.unparse(statement.annotation)
        if "ClassVar" in annotation:
            continue
        names.append(statement.target.id)
    return names


def string_constant(node: ast.AST) -> Optional[str]:
    """The value of a string literal node, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


__all__ = ["dotted_name", "callee_basename", "class_field_names", "string_constant"]
