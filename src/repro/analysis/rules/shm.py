"""REP007 — shm lifecycle: no SharedMemory creation without paired cleanup.

A :class:`multiprocessing.shared_memory.SharedMemory` segment is a kernel
object, not a Python object: dropping the last reference unmaps it but does
**not** remove it — a segment created and never ``unlink()``-ed outlives the
process in ``/dev/shm`` until the machine reboots (the resource tracker
merely *warns*).  The zero-copy shard transport makes segment creation a hot
code path, which is exactly when a forgotten cleanup becomes a slow host
leak: every crashed or interrupted campaign leaves its rings behind.

The rule therefore flags every ``SharedMemory(...)`` construction that is
not visibly paired with cleanup in the same scope:

* as the context expression of a ``with`` statement (the context manager
  closes the mapping), or
* inside a ``try`` whose ``finally`` calls ``.close()`` / ``.unlink()`` /
  ``.release()`` on something.

Ownership transfers — a segment stored on ``self`` and released by a
dedicated lifecycle method (``ShmRing.release``), or a worker-side attach
whose close happens on cache eviction — are legitimate and must say so with
``# repro: allow[shm-lifecycle]`` right where the segment is created, which
is the point: segment lifecycle is always either locally obvious or
explicitly documented.
"""

from __future__ import annotations

import ast
from typing import Sequence

from ..walker import ModuleContext, Rule, register_rule

#: Attribute calls in a ``finally`` accepted as cleanup of a created segment.
CLEANUP_ATTRS = ("close", "unlink", "release")

#: Statement types that open their own scope — their bodies are scanned by
#: their own ``visit_`` callback, never by an enclosing scope's scan.
_SCOPE_STMTS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _is_shared_memory_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr == "SharedMemory"
    return isinstance(func, ast.Name) and func.id == "SharedMemory"


def _has_cleanup(finalbody: Sequence[ast.stmt]) -> bool:
    for stmt in finalbody:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in CLEANUP_ATTRS
            ):
                return True
    return False


@register_rule
class ShmLifecycleRule(Rule):
    """A ``SharedMemory`` segment is a kernel object, not a Python object: if
    the creating code path raises before ``unlink()``, the segment outlives
    the process and /dev/shm fills up across campaign runs until the machine
    needs a reboot.  Creation must be paired with cleanup on every path.

    Example::

        shm = SharedMemory(create=True, size=nbytes)
        write_shard(shm)                   # raises -> segment leaks forever

    Fix::

        shm = SharedMemory(create=True, size=nbytes)
        try:
            write_shard(shm)
        finally:
            shm.close()
            shm.unlink()                   # creator owns the unlink
    """

    rule_id = "REP007"
    name = "shm-lifecycle"
    severity = "error"
    description = (
        "SharedMemory created without a paired unlink()/close() in a finally "
        "or context manager (leaked segments outlive the process)"
    )

    # -- scope entry points (one scan per scope, nested scopes excluded) --- #
    def visit_Module(self, node: ast.Module, ctx: ModuleContext) -> None:
        self._scan_body(node.body, ctx, guarded=False)

    def visit_FunctionDef(self, node: ast.FunctionDef, ctx: ModuleContext) -> None:
        self._scan_body(node.body, ctx, guarded=False)

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef, ctx: ModuleContext
    ) -> None:
        self._scan_body(node.body, ctx, guarded=False)

    def visit_ClassDef(self, node: ast.ClassDef, ctx: ModuleContext) -> None:
        self._scan_body(node.body, ctx, guarded=False)

    # -- the scan ---------------------------------------------------------- #
    def _scan_body(
        self, body: Sequence[ast.stmt], ctx: ModuleContext, guarded: bool
    ) -> None:
        # the canonical pattern creates *before* the try whose finally cleans
        # up (`segment = SharedMemory(...)` / `try: ... finally: close()`):
        # a creation is guarded if any later sibling is such a try
        protected_after = [False] * (len(body) + 1)
        for i in range(len(body) - 1, -1, -1):
            protected_after[i] = protected_after[i + 1] or (
                isinstance(body[i], ast.Try) and _has_cleanup(body[i].finalbody)
            )
        for i, stmt in enumerate(body):
            self._scan_stmt(stmt, ctx, guarded or protected_after[i + 1])

    def _scan_stmt(self, stmt: ast.stmt, ctx: ModuleContext, guarded: bool) -> None:
        if isinstance(stmt, _SCOPE_STMTS):
            return  # its own visit_ callback scans it
        if isinstance(stmt, ast.Try):
            inner = guarded or _has_cleanup(stmt.finalbody)
            self._scan_body(list(stmt.body) + list(stmt.orelse), ctx, inner)
            for handler in stmt.handlers:
                self._scan_body(handler.body, ctx, inner)
            # a creation *inside* the finally is not protected by it
            self._scan_body(stmt.finalbody, ctx, guarded)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            # the context manager owns cleanup of its context expressions
            self._scan_body(stmt.body, ctx, guarded)
            return
        nested = []
        for field_name in ("body", "orelse"):
            nested.extend(getattr(stmt, field_name, []) or [])
        if nested:
            for child in ast.iter_child_nodes(stmt):
                if not isinstance(child, ast.stmt):
                    self._check_expr(child, ctx, guarded)
            self._scan_body(nested, ctx, guarded)
        else:
            self._check_expr(stmt, ctx, guarded)

    def _check_expr(self, node: ast.AST, ctx: ModuleContext, guarded: bool) -> None:
        if guarded:
            return
        for sub in ast.walk(node):
            if _is_shared_memory_call(sub):
                ctx.report(
                    self,
                    sub,
                    "SharedMemory segment created without visible cleanup — "
                    "an un-unlinked segment outlives the process in /dev/shm",
                    hint="wrap in `with`, pair with close()/unlink() in a "
                    "finally, or document the ownership transfer with "
                    "# repro: allow[shm-lifecycle]",
                )


__all__ = ["ShmLifecycleRule"]
