"""REP001 — all model traffic flows through the execution-policy funnel.

The architecture note in ROADMAP.md makes one promise every scaling feature
relies on: model queries go through ``ExecutionPolicy.build_engine()`` into a
registered ``ModelBackend``, so they are batched, cached, sharded and counted
in ``QueryStats``.  A bare ``model.predict(...)`` somewhere deep in a
subsystem silently bypasses all four — it still *works*, which is exactly why
only a static rule catches it before the call site gets hot.

Two patterns are flagged outside the engine/runtime/nn layers:

* **query traffic** — ``predict`` / ``predict_proba`` / ``loss_input_gradient``
  / ``forward`` called on a receiver that is not engine-named (``engine``,
  ``query_engine``, ...).  Route it through ``policy.build_engine()`` /
  ``policy.session()`` instead, or pragma-justify genuinely whitebox access.
* **training traffic** — a model-named value handed to a ``.fit(...)`` call.
  Training mutates weights outside the funnel (sharded replicas snapshot the
  model), so every training site must be explicit and justified.
"""

from __future__ import annotations

import ast

from ..walker import ModuleContext, Rule, register_rule
from .common import dotted_name

#: Methods that constitute model query traffic.
QUERY_METHODS = ("predict", "predict_proba", "loss_input_gradient", "forward")

#: Layers allowed to touch models directly: the engines themselves, the
#: runtime that builds them, and the NumPy substrate the models are made of.
ALLOWED_PATH_PARTS = ("repro/engine/", "repro/runtime/", "repro/nn/")
ALLOWED_PATH_SUFFIXES = ("repro/types.py",)

#: Receiver names (terminal or any dotted component) that mark funnel traffic.
ENGINE_TOKEN = "engine"

#: First-argument names that mark a ``.fit`` call as model training.
MODELISH_NAMES = ("model", "network", "classifier")


@register_rule
class EngineFunnelRule(Rule):
    """Every model query outside the funnel is unbatched, uncached, unsharded
    and invisible to ``QueryStats`` — the four properties every scaling
    feature (and the paper's query-budget accounting) relies on.  The call
    still returns the right answer, which is exactly why only a static rule
    catches it before the call site gets hot.

    Example::

        probs = self.model.predict_proba(batch)   # bypasses the funnel

    Fix::

        engine = policy.build_engine(self.model)  # batched/cached/counted
        probs = engine.predict_proba(batch)
        # genuinely whitebox access (gradient attacks, trainers) says why:
        grad = model.loss_input_gradient(x, y)  # repro: allow[engine-funnel] whitebox by design
    """

    rule_id = "REP001"
    name = "engine-funnel"
    severity = "error"
    description = (
        "direct model query/training traffic outside the "
        "ExecutionPolicy.build_engine() funnel"
    )

    def applies_to(self, path: str) -> bool:
        if any(part in path for part in ALLOWED_PATH_PARTS):
            return False
        return not path.endswith(ALLOWED_PATH_SUFFIXES)

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr in QUERY_METHODS:
            receiver = dotted_name(func.value)
            if receiver is None or receiver == "self":
                return
            if any(ENGINE_TOKEN in part for part in receiver.split(".")):
                return
            ctx.report(
                self,
                node,
                f"direct model query {receiver}.{func.attr}(...) bypasses the "
                "engine funnel (unbatched, uncached, invisible to QueryStats)",
                hint="route through ExecutionPolicy.build_engine()/session(), "
                "or justify whitebox access with # repro: allow[engine-funnel]",
            )
            return
        if func.attr == "fit" and node.args:
            first = dotted_name(node.args[0])
            if first is None:
                return
            if first.split(".")[-1] in MODELISH_NAMES:
                ctx.report(
                    self,
                    node,
                    f"model-valued argument {first!r} trained via "
                    f"{func.attr}(...) outside the engine funnel",
                    hint="training is whitebox by definition — mark the site "
                    "with # repro: allow[engine-funnel] and say why",
                )


__all__ = ["EngineFunnelRule"]
