"""REP006 — timeout discipline: no unbounded waits outside the fault layer.

The fault-tolerance story (``repro.faults``) rests on every cross-process
wait having a deadline: the supervisor gathers futures with
``result(timeout=...)`` and compares worker heartbeats against the retry
policy's ``shard_timeout_s``, which is how a SIGKILLed or hung worker is
*noticed* instead of hanging the campaign forever.  One bare
``future.result()`` added anywhere else quietly reintroduces the infinite
wait the supervisor exists to eliminate — it works in every test where
nothing dies, which is exactly why only a static rule catches it.

Three shapes are flagged outside ``repro/faults/``:

* ``<anything>.result()`` with neither a positional timeout nor a
  ``timeout=`` keyword — an unbounded wait on a future;
* ``<queue-ish>.get(...)`` without a timeout — an unbounded blocking read
  (receivers with a ``queue``/``mailbox`` token; plain ``dict.get`` never
  matches);
* ``<pool-ish>.submit(...)`` — raw dispatch onto an executor whose future
  then needs hand-rolled deadline bookkeeping.  Route the work through
  :class:`repro.faults.ShardSupervisor` (which owns the deadline), or
  justify the site with ``# repro: allow[timeout-discipline]``.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from ..walker import ModuleContext, Rule, register_rule

#: The layer that owns deadlines — its waits are the supervised ones.
EXEMPT_PATH_PART = "repro/faults/"

#: Receiver-name tokens marking a blocking-queue read.
QUEUE_TOKENS = ("queue", "mailbox")

#: Receiver-name tokens marking an executor dispatch.
POOL_TOKENS = ("pool", "executor")


def _receiver_tokens(node: ast.AST) -> List[str]:
    """Lower-cased name components of a call receiver.

    Unlike :func:`.common.dotted_name` this tolerates subscripts, so
    ``pools[worker].submit`` still yields ``["pools"]`` — an executor
    hiding in a container is the same unsupervised dispatch.
    """
    parts: List[str] = []
    cursor = node
    while True:
        if isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr.lower())
            cursor = cursor.value
        elif isinstance(cursor, ast.Subscript):
            cursor = cursor.value
        elif isinstance(cursor, ast.Name):
            parts.append(cursor.id.lower())
            return parts
        else:
            return parts


def _has_timeout(node: ast.Call) -> bool:
    return any(keyword.arg == "timeout" for keyword in node.keywords)


def _matches(tokens: List[str], markers: tuple) -> bool:
    return any(marker in token for token in tokens for marker in markers)


@register_rule
class TimeoutDisciplineRule(Rule):
    """A bare ``future.result()`` or ``queue.get()`` waits forever on a
    worker that died mid-task, turning one crashed process into a hung
    campaign; raw executor dispatch outside ``repro.faults`` likewise opts
    out of the supervision (retry, replan, crash-containment) the repo
    guarantees.  Every cross-process wait must be bounded.

    Example::

        payload = result_queue.get()        # hangs forever on worker death

    Fix::

        payload = result_queue.get(timeout=HEARTBEAT_S)   # bounded wait
        # dispatch through repro.faults supervision instead of a raw pool
    """

    rule_id = "REP006"
    name = "timeout-discipline"
    severity = "error"
    description = (
        "unbounded cross-process wait (bare future.result()/queue.get()) or "
        "raw executor dispatch outside the supervised repro.faults layer"
    )

    def applies_to(self, path: str) -> bool:
        return EXEMPT_PATH_PART not in path

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr == "result":
            if node.args or _has_timeout(node):
                return
            ctx.report(
                self,
                node,
                "bare .result() waits forever if the worker died or hung",
                hint="pass a timeout (or gather through "
                "repro.faults.ShardSupervisor); justify a genuinely bounded "
                "wait with # repro: allow[timeout-discipline]",
            )
            return
        tokens = _receiver_tokens(func.value)
        if func.attr == "get" and _matches(tokens, QUEUE_TOKENS):
            # Queue.get(block, timeout): two positionals also bound the wait
            if len(node.args) >= 2 or _has_timeout(node):
                return
            ctx.report(
                self,
                node,
                "blocking queue read without a timeout never notices a dead "
                "producer",
                hint="pass timeout= (or get_nowait() in a poll loop); justify "
                "with # repro: allow[timeout-discipline]",
            )
            return
        if func.attr == "submit" and _matches(tokens, POOL_TOKENS):
            ctx.report(
                self,
                node,
                "raw executor submit: the returned future needs its own "
                "deadline/heartbeat bookkeeping to survive worker loss",
                hint="dispatch through repro.faults.ShardSupervisor.execute, "
                "or justify with # repro: allow[timeout-discipline]",
            )


__all__ = ["TimeoutDisciplineRule"]
