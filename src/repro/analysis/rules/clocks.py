"""REP008 — clock discipline: wall-clock reads live in ``repro.telemetry``.

The execution funnel's determinism and the fault layer's deadline math both
depend on which clock a duration comes from.  ``time.time()`` is a wall
clock: NTP slews it, DST and manual adjustments step it, and a single
wall-clock delta used as a heartbeat age or timeout can mis-classify a
healthy worker as hung (or hide a genuinely hung one).  The PR 9 audit
found exactly this hazard class around ``faults/heartbeat.py``: heartbeat
stamps and deadline comparisons must share one monotonic timebase or the
supervision story silently degrades.

The rule therefore funnels every clock read through
:mod:`repro.telemetry.clock` — ``clock.monotonic()`` for durations and
deadlines, ``clock.wall()`` for the few legitimate calendar-time uses
(registry ``created_at``/``updated_at`` metadata, trace origins).  Flagged
everywhere outside ``repro/telemetry/``:

* ``time.time()``, ``time.localtime()``, ``time.gmtime()``, ``time.ctime()``
  — raw wall-clock reads;
* ``datetime.now()``, ``datetime.utcnow()``, ``date.today()`` — the same
  hazard wearing a datetime object.

``time.monotonic()``/``perf_counter()`` are *not* flagged (they are safe for
durations; routing them through ``clock`` is a style preference, not an
invariant), and ``time.sleep`` is unrelated.  A genuinely calendar-facing
site outside the telemetry layer carries
``# repro: allow[clock-discipline]``.
"""

from __future__ import annotations

import ast

from ..walker import ModuleContext, Rule, register_rule

#: The single module allowed to read clocks directly.
EXEMPT_PATH_PART = "repro/telemetry/"

#: ``time.<attr>`` calls that read the wall clock.
TIME_WALL_ATTRS = frozenset({"time", "time_ns", "localtime", "gmtime", "ctime"})

#: ``datetime.<attr>`` / ``date.<attr>`` constructors that read the wall clock.
DATETIME_WALL_ATTRS = frozenset({"now", "utcnow", "today"})

#: Receiver names the datetime-shaped check applies to.
DATETIME_RECEIVERS = frozenset({"datetime", "date"})


@register_rule
class ClockDisciplineRule(Rule):
    """``time.time()`` can jump backwards under NTP adjustment, so durations
    and deadlines computed from it are occasionally negative or wildly long —
    flaky timeouts that reproduce never.  Wall-clock timestamps belong only
    in ``repro.telemetry`` (where humans read them); all arithmetic uses the
    monotonic clock.

    Example::

        start = time.time()
        ...
        if time.time() - start > budget_s:   # NTP step -> false timeout

    Fix::

        start = time.monotonic()
        if time.monotonic() - start > budget_s:
    """

    rule_id = "REP008"
    name = "clock-discipline"
    severity = "error"
    description = (
        "wall-clock read (time.time()/datetime.now()/...) outside "
        "repro.telemetry; durations and deadlines must use "
        "telemetry.clock.monotonic(), calendar metadata telemetry.clock.wall()"
    )

    def applies_to(self, path: str) -> bool:
        return EXEMPT_PATH_PART not in path

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        receiver = func.value
        if not isinstance(receiver, ast.Name):
            return
        if receiver.id == "time" and func.attr in TIME_WALL_ATTRS:
            ctx.report(
                self,
                node,
                f"time.{func.attr}() reads the wall clock — NTP slew or a "
                "clock step corrupts any duration or deadline derived from it",
                hint="use repro.telemetry.clock.monotonic() for durations, "
                "clock.wall() for calendar metadata; justify a raw read with "
                "# repro: allow[clock-discipline]",
            )
        elif receiver.id in DATETIME_RECEIVERS and func.attr in DATETIME_WALL_ATTRS:
            ctx.report(
                self,
                node,
                f"{receiver.id}.{func.attr}() reads the wall clock — the same "
                "step/slew hazard as time.time() in datetime form",
                hint="derive calendar values from repro.telemetry.clock.wall(); "
                "justify with # repro: allow[clock-discipline]",
            )


__all__ = ["ClockDisciplineRule"]
