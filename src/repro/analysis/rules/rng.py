"""REP002 — RNG discipline: no global state, no unseeded generators.

Bit-identical campaigns across execution backends rest on one discipline
(see ``repro.config``): every stochastic component takes an explicit seeded
``numpy.random.Generator`` (spawned per seed by the campaign policy), and the
legacy global-state API (``np.random.seed`` / ``np.random.rand`` / ...) is
never touched.  One stray global call makes results depend on import order
and thread scheduling — precisely the class of nondeterminism the equivalence
suites cannot pin.

Flagged anywhere inside ``repro.*``:

* any call of the legacy module-level API ``np.random.<fn>(...)``
  (``numpy.random`` spelled out included);
* ``default_rng()`` *without* a seed argument — an intentionally
  nondeterministic generator must be requested through ``ensure_rng(None)``,
  which is the one documented opt-in (and is itself pragma-annotated).
"""

from __future__ import annotations

import ast

from ..walker import ModuleContext, Rule, register_rule
from .common import dotted_name

#: Module-level np.random API that mutates or reads hidden global state.
LEGACY_FUNCTIONS = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
        "standard_normal",
        "binomial",
        "poisson",
        "beta",
        "gamma",
        "exponential",
        "multivariate_normal",
        "get_state",
        "set_state",
        "RandomState",
    }
)

#: Receiver spellings of the numpy random module.
RANDOM_MODULES = ("np.random", "numpy.random")


@register_rule
class RngDisciplineRule(Rule):
    """Global-state RNG calls (``np.random.shuffle`` & friends) draw from one
    hidden process-wide stream, so any import-order or thread-timing change
    silently reshuffles every downstream sample — the bit-identical-rerun
    contract dies without a single test failing.  Unseeded ``default_rng()``
    is the same bug one step earlier.

    Example::

        idx = np.random.permutation(len(pool))    # hidden global stream

    Fix::

        def __init__(self, rng: np.random.Generator): ...
        idx = self.rng.permutation(len(pool))     # seeded, owned, replayable
    """

    rule_id = "REP002"
    name = "rng-discipline"
    severity = "error"
    description = (
        "legacy global-state numpy RNG API, or an unseeded default_rng() — "
        "every stochastic path must take a seeded Generator"
    )

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        target = dotted_name(node.func)
        if target is None:
            return
        module, _, leaf = target.rpartition(".")
        if module in RANDOM_MODULES and leaf in LEGACY_FUNCTIONS:
            ctx.report(
                self,
                node,
                f"{target}(...) uses numpy's global random state; results "
                "depend on import order and are unreproducible",
                hint="accept an RngLike and convert via ensure_rng / spawn_rngs",
            )
            return
        if leaf == "default_rng" or target == "default_rng":
            if not node.args and not node.keywords:
                ctx.report(
                    self,
                    node,
                    "default_rng() without a seed creates a nondeterministic "
                    "generator outside the campaign RNG tree",
                    hint="thread the campaign Generator through, or opt into "
                    "nondeterminism explicitly via ensure_rng(None)",
                )


__all__ = ["RngDisciplineRule"]
