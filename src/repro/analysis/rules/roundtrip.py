"""REP005 — ``to_dict``/``from_dict`` pairs must agree on their key set.

Campaign durability rests on exact serialization round-trips:
``ExecutionPolicy``, ``QueryStats``, ``ReliabilityEstimate`` and
``CampaignSpec`` are all rebuilt from stored JSON when a run is resumed or
re-launched.  The failure mode is silent drift — a field added to the class
but not to ``to_dict`` vanishes on every save, and nothing crashes until a
resumed campaign quietly diverges.

For every class that defines both halves the rule statically derives

* the **produced** key set from ``to_dict`` (literal dict keys,
  ``dataclasses.asdict`` → the declared dataclass fields, or one level of
  ``return self.other_method()`` indirection), and
* the **consumed** key set from ``from_dict`` (explicit ``data["k"]`` /
  ``.get("k")`` keys, plus the declared fields whenever the method validates
  against ``cls.__dataclass_fields__`` or constructs via ``cls(**...)``),

and reports any asymmetric difference.  When either side is too dynamic to
pin down, the pair is skipped rather than guessed at.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional, Set

from ..walker import ModuleContext, Rule, register_rule
from .common import callee_basename, class_field_names, dotted_name, string_constant

#: Method names accepted as the serializing half.
TO_DICT_NAMES = ("to_dict", "as_dict")


def _produced_keys(
    fn: ast.FunctionDef,
    methods: Dict[str, ast.FunctionDef],
    fields: Set[str],
    depth: int = 0,
) -> Optional[Set[str]]:
    """Key set ``fn`` returns, or ``None`` when not statically derivable."""
    if depth > 2:
        return None
    produced: Set[str] = set()
    saw_return = False
    for node in ast.walk(fn):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        saw_return = True
        value = node.value
        if isinstance(value, ast.Dict):
            for key in value.keys:
                literal = string_constant(key) if key is not None else None
                if literal is None:
                    return None  # computed or **-splatted key
                produced.add(literal)
            continue
        if isinstance(value, ast.Call):
            target = dotted_name(value.func)
            if target in ("dataclasses.asdict", "asdict"):
                produced.update(fields)
                continue
            if target is not None and target.startswith("self."):
                inner = methods.get(target.split(".", 1)[1])
                if inner is not None:
                    nested = _produced_keys(inner, methods, fields, depth + 1)
                    if nested is None:
                        return None
                    produced.update(nested)
                    continue
        return None  # some other expression — too dynamic to compare
    return produced if saw_return and produced else None


def _consumed_keys(fn: ast.FunctionDef, fields: Set[str]) -> Optional[Set[str]]:
    """Key set ``fn`` consumes, or ``None`` when not statically derivable."""
    explicit: Set[str] = set()
    dynamic = False
    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute) and node.attr == "__dataclass_fields__":
            dynamic = True
        elif isinstance(node, ast.Call):
            if any(keyword.arg is None for keyword in node.keywords):
                dynamic = True  # cls(**data)-style construction
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("get", "pop")
                and node.args
            ):
                literal = string_constant(node.args[0])
                if literal is not None:
                    explicit.add(literal)
        elif isinstance(node, ast.Subscript):
            literal = string_constant(node.slice)
            if literal is not None:
                explicit.add(literal)
    if dynamic:
        return set(fields) | explicit
    return explicit or None


@register_rule
class DictRoundTripRule(Rule):
    """``to_dict``/``from_dict`` pairs are the serialization boundary for
    checkpoints, shard transport and telemetry artifacts; when their key sets
    drift apart a field is silently dropped on write or rejected on read —
    usually discovered days later when an old artifact no longer loads.

    Example::

        def to_dict(self):
            return {"seed": self.seed, "budget": self.budget}
        @classmethod
        def from_dict(cls, d):
            return cls(seed=d["seed"])     # "budget" silently dropped

    Fix::

        Keep both halves (and the dataclass fields) in lock step — every key
        produced by to_dict is consumed by from_dict and vice versa.
    """

    rule_id = "REP005"
    name = "dict-round-trip"
    severity = "error"
    description = (
        "to_dict/from_dict key sets drifted apart — serialization would "
        "silently drop or reject fields"
    )

    def visit_ClassDef(self, node: ast.ClassDef, ctx: ModuleContext) -> None:
        methods = {
            statement.name: statement
            for statement in node.body
            if isinstance(statement, ast.FunctionDef)
        }
        if "from_dict" not in methods:
            return
        serializer = next(
            (methods[name] for name in TO_DICT_NAMES if name in methods), None
        )
        if serializer is None:
            return
        fields = set(class_field_names(node))
        produced = _produced_keys(serializer, methods, fields)
        consumed = _consumed_keys(methods["from_dict"], fields)
        if produced is None or consumed is None:
            return
        missing = sorted(consumed - produced)
        extra = sorted(produced - consumed)
        if not missing and not extra:
            return
        details = []
        if missing:
            details.append(f"never produced by {serializer.name}: {missing}")
        if extra:
            details.append(f"not consumed by from_dict: {extra}")
        ctx.report(
            self,
            serializer,
            f"{node.name}.{serializer.name}/from_dict key sets drift — "
            + "; ".join(details),
            hint="keep both halves (and the dataclass fields) in lock step",
        )


__all__ = ["DictRoundTripRule"]
