"""REP010 — interprocedural funnel escape: models can't hide behind helpers.

REP001 is per-file and name-based: it flags ``model.predict(...)`` but must
skip engine-named receivers (that is the sanctioned funnel surface) and
dynamic receivers (``f().predict``) it cannot classify.  Those two blind
spots are exactly how a raw model dodges the funnel once helpers are
involved: pass ``self.model`` into a parameter *named* ``engine``, or return
the model from a getter and query its return value.  Both look locally
clean in every file involved.

This rule closes the gap with whole-program taint tracking: model-typed
values (terminal names ``model``/``network``/``classifier``, locals assigned
from them, and — via a call-graph fixpoint — return values of functions that
transitively return one) are followed through assignments, returns and call
arguments across modules.  Flagged outside the engine/runtime/nn layers:

* a tainted value passed into an **engine-named parameter** of a resolved
  callee that queries that parameter directly (reported at the call site —
  the file where the model escapes);
* a query method called on the **return value of a model-returning
  function** (``get_model().predict`` or ``m = get_model(); m.predict``),
  the dynamic-receiver shape REP001 must skip;
* an **engine-named local** bound to a tainted value and then queried — the
  rename-it-engine dodge.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..findings import Finding
from ..program.facts import ENGINE_TOKEN, MODELISH_NAMES
from ..program.graph import ProgramGraph, SymbolRef
from ..program.registry import ProgramRule, register_program_rule
from .funnel import ALLOWED_PATH_PARTS, ALLOWED_PATH_SUFFIXES


def _allowed_path(path: str) -> bool:
    if any(part in path for part in ALLOWED_PATH_PARTS):
        return True
    return path.endswith(ALLOWED_PATH_SUFFIXES)


def _engine_named(name: str) -> bool:
    return any(ENGINE_TOKEN in part.lower() for part in name.split("."))


@register_program_rule
class FunnelEscapeRule(ProgramRule):
    """The funnel contract (all model traffic through
    ``ExecutionPolicy.build_engine()``) is cross-module by nature: the model
    object is *created* in one package and *queried* in another, and a
    helper boundary between the two hides the escape from any per-file
    check.  The rule taint-tracks model-typed values through assignments,
    returns and resolved call arguments, and flags queries on them in the
    shapes REP001 must skip.

    Example::

        def run_batch(engine, x):       # parameter *named* engine ...
            return engine.predict(x)    # ... REP001 trusts the name

        run_batch(self.model, x)        # ... but a raw model flows in

    Fix::

        engine = policy.build_engine(model)   # build the real engine once
        run_batch(engine, x)                  # helpers receive engines only
        # genuinely whitebox paths (trainers, gradient attacks) say why:
        # repro: allow[funnel-escape] <justification>
    """

    rule_id = "REP010"
    name = "funnel-escape"
    severity = "error"
    description = (
        "model-typed value smuggled through helpers/returns/engine-named "
        "parameters into direct query calls (interprocedural REP001)"
    )

    def check(self, program: ProgramGraph) -> List[Finding]:
        findings: List[Finding] = []
        returns_model = program.returns_model()

        #: (module, qualname) -> engine-named params queried directly
        queried_params: Dict[Tuple[str, str], Dict[str, str]] = {}
        for facts, fn in program.functions():
            hits: Dict[str, str] = {}
            for sink in fn.query_sinks:
                if sink.receiver is None:
                    continue
                root = sink.receiver.split(".")[0]
                if root in fn.params and _engine_named(root):
                    hits.setdefault(root, sink.method)
            if hits:
                queried_params[(facts.module, fn.qualname)] = hits

        for facts, fn in program.functions():
            if _allowed_path(facts.path):
                continue
            self._check_call_sites(
                program, facts, fn, returns_model, queried_params, findings
            )
            self._check_sinks(program, facts, fn, returns_model, findings)
        return findings

    # ------------------------------------------------------------------ #
    def _tainted_desc(
        self,
        program: ProgramGraph,
        facts,
        fn,
        classified: Optional[Tuple[str, str]],
        returns_model,
    ) -> Optional[str]:
        """Human description of why an argument value is model-typed."""
        if classified is None:
            return None
        kind, value = classified
        if kind == "name":
            if value.split(".")[-1] in MODELISH_NAMES:
                return f"{value!r}"
            if value in fn.tainted_locals:
                return f"{value!r} (assigned from a model)"
            root = value.split(".")[0]
            if root in fn.local_calls:
                ref = program.resolve_call(facts, fn, fn.local_calls[root])
                if ref is not None and (ref.module, ref.qualname) in returns_model:
                    return f"{value!r} (returned by {fn.local_calls[root]}())"
            return None
        if kind == "call":
            ref = program.resolve_call(facts, fn, value)
            if ref is not None and (ref.module, ref.qualname) in returns_model:
                return f"the return value of {value}()"
        return None

    def _check_call_sites(
        self, program, facts, fn, returns_model, queried_params, findings
    ) -> None:
        for call in fn.calls:
            ref = program.resolve_call(facts, fn, call.callee)
            if ref is None or ref.kind != "function":
                continue
            hits = queried_params.get((ref.module, ref.qualname))
            if not hits:
                continue
            target = program.function(ref.module, ref.qualname)
            if target is None or _allowed_path(program.modules[ref.module].path):
                continue
            offset = 0
            if target.params and target.params[0] in ("self", "cls"):
                offset = 1
            for position, classified in enumerate(call.args):
                desc = self._tainted_desc(
                    program, facts, fn, classified, returns_model
                )
                if desc is None:
                    continue
                index = position + offset
                if index >= len(target.params):
                    continue
                param = target.params[index]
                if param in hits:
                    self._report_escape(
                        facts, call, ref, param, hits[param], desc, findings
                    )
            for keyword, classified in call.kwargs.items():
                desc = self._tainted_desc(
                    program, facts, fn, classified, returns_model
                )
                if desc is not None and keyword in hits:
                    self._report_escape(
                        facts, call, ref, keyword, hits[keyword], desc, findings
                    )

    def _report_escape(
        self, facts, call, ref: SymbolRef, param, method, desc, findings
    ) -> None:
        findings.append(
            self.finding(
                facts.path,
                call.lineno,
                f"raw model {desc} passed into engine-named parameter "
                f"{param!r} of {ref.module}.{ref.qualname}, which calls "
                f".{method}() on it directly — an interprocedural funnel "
                "escape invisible to the per-file check",
                hint="pass policy.build_engine(model) (a real engine) into "
                "the helper, or justify whitebox access with "
                "# repro: allow[funnel-escape]",
            )
        )

    def _check_sinks(self, program, facts, fn, returns_model, findings) -> None:
        for sink in fn.query_sinks:
            if sink.receiver_call is not None:
                ref = program.resolve_call(facts, fn, sink.receiver_call)
                if ref is not None and (ref.module, ref.qualname) in returns_model:
                    findings.append(
                        self.finding(
                            facts.path,
                            sink.lineno,
                            f".{sink.method}() called on the return value of "
                            f"{sink.receiver_call}(), which returns a raw "
                            "model — unbatched, uncached, invisible to "
                            "QueryStats",
                            hint="route through ExecutionPolicy.build_engine()"
                            "/session(), or justify with "
                            "# repro: allow[funnel-escape]",
                        )
                    )
                continue
            if sink.receiver is None or not _engine_named(sink.receiver):
                continue  # non-engine receivers are REP001's per-file job
            root = sink.receiver.split(".")[0]
            reason = None
            if sink.receiver in fn.tainted_locals or root in fn.tainted_locals:
                reason = "assigned from a raw model"
            elif root in fn.local_calls:
                ref = program.resolve_call(facts, fn, fn.local_calls[root])
                if ref is not None and (ref.module, ref.qualname) in returns_model:
                    reason = f"the return value of {fn.local_calls[root]}()"
            if reason is not None:
                findings.append(
                    self.finding(
                        facts.path,
                        sink.lineno,
                        f"engine-named variable {sink.receiver!r} is {reason}; "
                        f".{sink.method}() on it is a direct model query "
                        "wearing the funnel's name",
                        hint="build a real engine via policy.build_engine(), "
                        "or justify with # repro: allow[funnel-escape]",
                    )
                )


__all__ = ["FunnelEscapeRule"]
