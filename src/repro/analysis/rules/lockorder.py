"""REP009 — lock ordering: the cross-module lock graph must be acyclic.

The concurrency surface now spans four packages that take each other's locks:
the sharded coordinator's stats/cache locks (``engine.parallel``), the
supervisor's replan bookkeeping (``faults.supervision``), the shm staging
ledger (``engine.transport``) and the telemetry ring buffer
(``repro.telemetry``).  Each class is individually lock-correct (REP004
enforces that), but deadlock is a *global* property: thread 1 holds lock A
and wants B while thread 2 holds B and wants A — each side locally
blameless.  This rule builds the whole-program lock-acquisition graph —
an edge A→B wherever code acquires B while holding A, either by nesting
``with`` blocks or by calling (transitively, through the resolved call
graph) a function that takes B — and flags every edge participating in a
cycle, plus re-acquisition of a non-reentrant ``Lock`` the thread already
holds (self-deadlock).

Lock identity is name-based and class-scoped (``repro.engine.parallel.
ShardedQueryEngine._lock``): two instances of one class share an id, which
is the standard lock-ordering abstraction — if instance A can call into
instance B of the same class under its own lock, the order violation is
real on some interleaving.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..findings import Finding
from ..program.graph import ProgramGraph
from ..program.registry import ProgramRule, register_program_rule


def _strongly_connected(adjacency: Dict[str, set]) -> List[set]:
    """Tarjan's SCC (iterative — the lock graph is tiny but rules never
    assume that)."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Dict[str, bool] = {}
    stack: List[str] = []
    sccs: List[set] = []
    counter = [0]

    def visit(root: str) -> None:
        work = [(root, iter(sorted(adjacency.get(root, ()))))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, edges = work[-1]
            advanced = False
            for target in edges:
                if target not in index:
                    index[target] = low[target] = counter[0]
                    counter[0] += 1
                    stack.append(target)
                    on_stack[target] = True
                    work.append((target, iter(sorted(adjacency.get(target, ())))))
                    advanced = True
                    break
                if on_stack.get(target):
                    low[node] = min(low[node], index[target])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component = set()
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.add(member)
                    if member == node:
                        break
                sccs.append(component)

    for node in adjacency:
        if node not in index:
            visit(node)
    return sccs


@register_program_rule
class LockOrderingRule(ProgramRule):
    """Deadlock is a whole-program property: every class can be locally
    lock-correct while the *order* two threads take two locks in differs,
    and the campaign hangs only under real concurrency.  The rule builds
    the cross-module lock-acquisition graph (acquired-while-holding edges,
    direct nesting and transitively through resolved calls) and reports
    cycles and non-reentrant re-acquisition.

    Example::

        class Coordinator:
            def merge(self):
                with self._lock:          # holds Coordinator._lock ...
                    self._sup.replan()    # ... which acquires Supervisor._lock

        class Supervisor:
            def harvest(self):
                with self._lock:          # holds Supervisor._lock ...
                    self._coord.absorb()  # ... which acquires Coordinator._lock

    Fix::

        Pick one acquisition order and restructure the second path to
        release its lock first (copy the data out, then call), or merge the
        two lock domains.  A cycle that cannot fire — e.g. the instances
        provably never point at each other — is documented in place with
        `# repro: allow[lock-ordering] <why the interleaving is impossible>`.
    """

    rule_id = "REP009"
    name = "lock-ordering"
    severity = "error"
    description = (
        "cross-module lock-acquisition cycle or non-reentrant re-acquisition "
        "(static deadlock detector over the whole-program lock graph)"
    )

    def check(self, program: ProgramGraph) -> List[Finding]:
        transitive = program.transitive_locks()
        #: (A, B) -> evidence rows (path, lineno, description)
        edges: Dict[Tuple[str, str], List[Tuple[str, int, str]]] = {}
        self_edges: List[Tuple[str, str, int, str]] = []

        for facts, fn in program.functions():
            where = f"{facts.module}.{fn.qualname}"
            for acquire in fn.lock_acquires:
                inner = program.lock_id(facts, fn, acquire.lock)
                if inner is None:
                    continue
                for held_expr in acquire.held:
                    outer = program.lock_id(facts, fn, held_expr)
                    if outer is None:
                        continue
                    if outer == inner:
                        self_edges.append(
                            (
                                outer,
                                facts.path,
                                acquire.lineno,
                                f"{where} re-enters {acquire.lock} it already holds",
                            )
                        )
                        continue
                    edges.setdefault((outer, inner), []).append(
                        (
                            facts.path,
                            acquire.lineno,
                            f"{where} acquires {inner} while holding {outer}",
                        )
                    )
            for call in fn.calls:
                if not call.held_locks:
                    continue
                ref = program.resolve_call(facts, fn, call.callee)
                if ref is None or ref.kind != "function":
                    continue
                callee_locks = transitive.get((ref.module, ref.qualname), frozenset())
                if not callee_locks:
                    continue
                for held_expr in call.held_locks:
                    outer = program.lock_id(facts, fn, held_expr)
                    if outer is None:
                        continue
                    for inner in sorted(callee_locks):
                        if outer == inner:
                            self_edges.append(
                                (
                                    outer,
                                    facts.path,
                                    call.lineno,
                                    f"{where} holds {held_expr} and calls "
                                    f"{call.callee}(), which re-acquires it",
                                )
                            )
                            continue
                        edges.setdefault((outer, inner), []).append(
                            (
                                facts.path,
                                call.lineno,
                                f"{where} calls {call.callee}() (acquires {inner}) "
                                f"while holding {outer}",
                            )
                        )

        findings: List[Finding] = []

        # self-deadlock: re-acquiring a lock the thread holds, unless RLock
        seen_self = set()
        for lock, path, lineno, description in self_edges:
            if program.lock_kind(lock) == "RLock":
                continue
            key = (lock, path, lineno)
            if key in seen_self:
                continue
            seen_self.add(key)
            findings.append(
                self.finding(
                    path,
                    lineno,
                    f"non-reentrant lock {lock} re-acquired while held: "
                    f"{description} — this thread deadlocks itself",
                    hint="make the inner path lock-free (caller already holds "
                    "it), use an RLock deliberately, or justify with "
                    "# repro: allow[lock-ordering]",
                )
            )

        # ordering cycles: every edge inside a non-trivial SCC is reported
        adjacency: Dict[str, set] = {}
        for (outer, inner) in edges:
            adjacency.setdefault(outer, set()).add(inner)
            adjacency.setdefault(inner, set())
        for component in _strongly_connected(adjacency):
            if len(component) < 2:
                continue
            cycle = " -> ".join(sorted(component)) + " -> ..."
            for (outer, inner), evidence in sorted(edges.items()):
                if outer not in component or inner not in component:
                    continue
                path, lineno, description = evidence[0]
                findings.append(
                    self.finding(
                        path,
                        lineno,
                        f"lock-order cycle [{cycle}]: {description}; another "
                        "path acquires these locks in the opposite order",
                        hint="pick one global acquisition order (or drop the "
                        "lock before the call); justify an impossible "
                        "interleaving with # repro: allow[lock-ordering]",
                    )
                )
        return findings


__all__ = ["LockOrderingRule"]
