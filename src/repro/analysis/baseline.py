"""Committed lint baseline: pre-existing debt tracked without blocking CI.

The baseline file records findings that were present when the linter (or a
new rule) landed.  CI fails only on findings *not* in the baseline, so a new
rule can ship with the debt it uncovers tracked in review rather than fixed
in the same commit — and ``--update-baseline`` re-snapshots after a cleanup
so the ratchet only ever tightens.

Matching uses :meth:`Finding.key` (rule, path, message): moving code shifts
line numbers without un-baselining anything, while changing *what* is wrong
produces a new finding, as it should.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Set, Tuple, Union

from ..exceptions import ConfigurationError
from .findings import Finding, sort_findings

BASELINE_VERSION = 1

#: Default baseline location (repo root, next to the CI config that uses it).
DEFAULT_BASELINE = "lint-baseline.json"


class Baseline:
    """An accepted set of findings loaded from (or destined for) disk."""

    def __init__(self, findings: Iterable[Finding] = ()) -> None:
        self.findings: List[Finding] = sort_findings(findings)
        self._keys: Set[Tuple[str, str, str]] = {f.key() for f in self.findings}

    def __len__(self) -> int:
        return len(self._keys)

    def is_known(self, finding: Finding) -> bool:
        """Whether ``finding`` is accepted debt."""
        return finding.key() in self._keys

    def stale_entries(self, current: Iterable[Finding]) -> List[Finding]:
        """Baseline entries no longer present in ``current`` (fixed debt).

        Stale entries never fail a run — they are surfaced so the next
        ``--update-baseline`` commit can shrink the file.
        """
        live = {finding.key() for finding in current}
        return [entry for entry in self.findings if entry.key() not in live]

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        """Load a baseline; a missing file is an empty baseline."""
        source = Path(path)
        if not source.exists():
            return cls()
        try:
            data = json.loads(source.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"could not parse baseline {source}: {exc}") from exc
        if not isinstance(data, dict) or "findings" not in data:
            raise ConfigurationError(
                f"baseline {source} must be a mapping with a 'findings' list"
            )
        if data.get("version") != BASELINE_VERSION:
            raise ConfigurationError(
                f"baseline {source} has version {data.get('version')!r}; "
                f"this analyzer writes version {BASELINE_VERSION}"
            )
        return cls(Finding.from_dict(entry) for entry in data["findings"])

    def write(self, path: Union[str, Path]) -> None:
        """Write the baseline as sorted, review-diffable JSON."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": BASELINE_VERSION,
            "findings": [finding.to_dict() for finding in self.findings],
        }
        target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


__all__ = ["BASELINE_VERSION", "DEFAULT_BASELINE", "Baseline"]
