"""``python -m repro lint`` — statically enforce the invariant contracts.

Exit codes: ``0`` when every finding is baselined or pragma-justified,
``1`` when new findings exist (this is what gates CI), ``2`` on usage errors.

Typical workflows::

    python -m repro lint                      # lint src/repro vs the baseline
    python -m repro lint src/repro --json     # CI: machine-readable findings
    python -m repro lint --sarif > lint.sarif # GitHub code-scanning upload
    python -m repro lint --changed            # findings on git-changed files only
    python -m repro lint --explain REP009     # why a rule exists + how to fix
    python -m repro lint --update-baseline    # accept current findings as debt
    python -m repro lint path/to/file.py --no-baseline   # absolute truth

Incremental by default: per-file analysis is cached under
``.repro-lint-cache/`` by content hash, so a warm run re-parses only what
changed (``--no-cache`` forces a full cold run, ``--jobs N`` fans a cold run
across processes).  Whole-program rules (REP009+) always see the full tree —
``--changed`` narrows the *reported* findings, never the analysis.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Set

from ..exceptions import ConfigurationError
from .baseline import DEFAULT_BASELINE, Baseline
from .explain import explain_rule
from .program.cache import DEFAULT_CACHE_DIR
from .program.registry import default_program_rules
from .report import render_json, render_text
from .sarif import render_sarif
from .walker import analyze_paths, default_rules

#: Default lint target when no paths are given.
DEFAULT_TARGET = "src/repro"

#: Bound on git subprocess calls (they are local and near-instant).
_GIT_TIMEOUT_S = 30


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="AST-based invariant linter for the repro codebase "
        "(engine-funnel, RNG, lock and serialization contracts, plus "
        "whole-program deadlock/taint/determinism rules).",
        epilog="Suppress one finding in code with `# repro: allow[rule-id]` "
        "plus a short justification.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=f"files or directories to lint (default: {DEFAULT_TARGET})",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the JSON report on stdout"
    )
    parser.add_argument(
        "--sarif",
        action="store_true",
        help="emit a SARIF 2.1.0 log on stdout (GitHub code-scanning input)",
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help="report findings only on files changed vs REF (default HEAD) "
        "plus untracked files; the whole-program graph still covers the "
        "full tree",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        help="print one rule's rationale, example and fix, then exit "
        "(id like REP009 or slug like lock-ordering)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        metavar="PATH",
        help=f"baseline file of accepted findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: every finding is reported as new",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="accept the current findings: rewrite the baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"incremental-analysis cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk cache: re-parse every file",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="processes for cold-run file analysis (default 1; only pays "
        "off on many cache misses)",
    )
    return parser


def _list_rules() -> int:
    for rule in default_rules():
        print(f"{rule.rule_id}  {rule.name:<18} {rule.description}")
    for rule in default_program_rules():
        print(f"{rule.rule_id}  {rule.name:<18} {rule.description}  [whole-program]")
    return 0


def _git_changed_files(ref: str) -> Set[str]:
    """Absolute resolved paths of files changed vs ``ref`` plus untracked."""
    def run(*argv: str) -> List[str]:
        proc = subprocess.run(
            list(argv),
            capture_output=True,
            text=True,
            timeout=_GIT_TIMEOUT_S,
        )
        if proc.returncode != 0:
            raise ConfigurationError(
                f"{' '.join(argv)} failed: {proc.stderr.strip() or proc.returncode}"
            )
        return [line for line in proc.stdout.splitlines() if line.strip()]

    toplevel = Path(run("git", "rev-parse", "--show-toplevel")[0])
    names = run("git", "diff", "--name-only", ref, "--")
    names += run("git", "ls-files", "--others", "--exclude-standard")
    return {
        (toplevel / name).resolve().as_posix()
        for name in names
        if name.endswith(".py")
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.explain:
        try:
            print(explain_rule(args.explain))
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0
    if args.list_rules:
        return _list_rules()
    if args.no_baseline and args.update_baseline:
        parser.error("--no-baseline and --update-baseline are mutually exclusive")
    if args.json and args.sarif:
        parser.error("--json and --sarif are mutually exclusive")

    paths = args.paths if args.paths else [DEFAULT_TARGET]
    try:
        changed: Optional[Set[str]] = (
            _git_changed_files(args.changed) if args.changed is not None else None
        )
        result = analyze_paths(
            paths,
            cache_dir=None if args.no_cache else args.cache_dir,
            jobs=max(1, args.jobs),
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if changed is not None:
        # scope the *report* to changed files; the analysis saw the full tree
        result.findings = [
            finding
            for finding in result.findings
            if Path(finding.path).resolve().as_posix() in changed
        ]

    if args.update_baseline:
        Baseline(result.findings).write(args.baseline)
        print(
            f"baseline {args.baseline} updated with "
            f"{len(result.findings)} finding(s) over {result.files_scanned} file(s)"
        )
        return 0

    baseline = Baseline() if args.no_baseline else _load_baseline(args.baseline)
    if baseline is None:
        return 2
    new = [finding for finding in result.findings if not baseline.is_known(finding)]
    baselined = [finding for finding in result.findings if baseline.is_known(finding)]
    stale = baseline.stale_entries(result.findings)

    if args.sarif:
        print(json.dumps(render_sarif(new, baselined), indent=2))
    elif args.json:
        print(json.dumps(render_json(result, new, baselined, stale), indent=2))
    else:
        print(render_text(result, new, baselined, stale))
    return 1 if new else 0


def _load_baseline(path: str) -> Optional[Baseline]:
    try:
        return Baseline.load(Path(path))
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


__all__ = ["main", "DEFAULT_TARGET"]
