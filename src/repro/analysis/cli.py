"""``python -m repro lint`` — statically enforce the invariant contracts.

Exit codes: ``0`` when every finding is baselined or pragma-justified,
``1`` when new findings exist (this is what gates CI), ``2`` on usage errors.

Typical workflows::

    python -m repro lint                      # lint src/repro vs the baseline
    python -m repro lint src/repro --json     # CI: machine-readable findings
    python -m repro lint --update-baseline    # accept current findings as debt
    python -m repro lint path/to/file.py --no-baseline   # absolute truth
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from ..exceptions import ConfigurationError
from .baseline import DEFAULT_BASELINE, Baseline
from .report import render_json, render_text
from .walker import analyze_paths, default_rules

#: Default lint target when no paths are given.
DEFAULT_TARGET = "src/repro"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="AST-based invariant linter for the repro codebase "
        "(engine-funnel, RNG, lock and serialization contracts).",
        epilog="Suppress one finding in code with `# repro: allow[rule-id]` "
        "plus a short justification.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=f"files or directories to lint (default: {DEFAULT_TARGET})",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the JSON report on stdout"
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        metavar="PATH",
        help=f"baseline file of accepted findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: every finding is reported as new",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="accept the current findings: rewrite the baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    return parser


def _list_rules() -> int:
    for rule in default_rules():
        print(f"{rule.rule_id}  {rule.name:<18} {rule.description}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        return _list_rules()
    if args.no_baseline and args.update_baseline:
        parser.error("--no-baseline and --update-baseline are mutually exclusive")

    paths = args.paths if args.paths else [DEFAULT_TARGET]
    try:
        result = analyze_paths(paths)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        Baseline(result.findings).write(args.baseline)
        print(
            f"baseline {args.baseline} updated with "
            f"{len(result.findings)} finding(s) over {result.files_scanned} file(s)"
        )
        return 0

    baseline = Baseline() if args.no_baseline else _load_baseline(args.baseline)
    if baseline is None:
        return 2
    new = [finding for finding in result.findings if not baseline.is_known(finding)]
    baselined = [finding for finding in result.findings if baseline.is_known(finding)]
    stale = baseline.stale_entries(result.findings)

    if args.json:
        print(json.dumps(render_json(result, new, baselined, stale), indent=2))
    else:
        print(render_text(result, new, baselined, stale))
    return 1 if new else 0


def _load_baseline(path: str) -> Optional[Baseline]:
    try:
        return Baseline.load(Path(path))
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


__all__ = ["main", "DEFAULT_TARGET"]
