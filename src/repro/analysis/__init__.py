"""``repro.analysis`` — AST-based static enforcement of the repo's invariants.

The reproduction's correctness story rests on contracts that are otherwise
enforced only at runtime or by convention: all model traffic flows through the
``ExecutionPolicy.build_engine()`` funnel, every stochastic component takes a
seeded ``Generator``, lock-guarded state is never touched lock-free, and
``to_dict``/``from_dict`` pairs round-trip exactly.  This package turns those
tribal rules into a static guardrail:

* a :class:`~repro.analysis.walker.Rule` protocol + registry with a
  single-parse, single-walk dispatcher (:func:`analyze_paths`);
* a whole-program layer (:mod:`repro.analysis.program`) — cross-module symbol
  table, call graph and taint/lock fixpoints — powering the
  :class:`~repro.analysis.program.registry.ProgramRule` set (REP009 deadlock
  detection, REP010 interprocedural funnel escape, REP011 iteration-order
  nondeterminism), with per-file results cached on disk by content hash so a
  warm ``python -m repro lint`` re-analyzes only what changed;
* structured :class:`~repro.analysis.findings.Finding` records with text,
  JSON and SARIF 2.1.0 reporters (the SARIF log feeds GitHub code scanning);
* inline suppression pragmas (``# repro: allow[rule-id]``) for intentional,
  justified exceptions — pragma spans cover decorated statements whole;
* a committed :class:`~repro.analysis.baseline.Baseline` so pre-existing debt
  is tracked without blocking CI, and ``--explain RULE`` documentation pulled
  straight from each rule's docstring.

Run it as ``python -m repro lint`` (see :mod:`repro.analysis.cli`); a
dedicated CI job fails on any non-baselined finding.  The package's own
modules are stdlib-only by design, so the analyzer can never be broken by the
scientific stack it lints (the ``python -m repro`` entry point still imports
the package root, which is where numpy comes in).
"""

from .baseline import DEFAULT_BASELINE, Baseline
from .cli import main
from .explain import explain_rule, rule_doc_sections
from .findings import SEVERITIES, Finding, sort_findings
from .pragmas import collect_pragmas, expand_decorated_pragmas, is_suppressed
from .program import (
    ProgramAnalysis,
    ProgramCache,
    ProgramGraph,
    ProgramRule,
    analyze_program,
    build_graph,
    default_program_rules,
    extract_facts,
    register_program_rule,
    registered_program_rules,
)
from .report import render_json, render_text
from .sarif import render_sarif
from .walker import (
    LintResult,
    ModuleContext,
    Rule,
    analyze_paths,
    analyze_source,
    default_rules,
    register_rule,
    registered_rules,
)

__all__ = [
    "Baseline",
    "DEFAULT_BASELINE",
    "Finding",
    "LintResult",
    "ModuleContext",
    "ProgramAnalysis",
    "ProgramCache",
    "ProgramGraph",
    "ProgramRule",
    "Rule",
    "SEVERITIES",
    "analyze_paths",
    "analyze_program",
    "analyze_source",
    "build_graph",
    "collect_pragmas",
    "default_program_rules",
    "default_rules",
    "expand_decorated_pragmas",
    "explain_rule",
    "extract_facts",
    "is_suppressed",
    "main",
    "register_program_rule",
    "register_rule",
    "registered_program_rules",
    "registered_rules",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_doc_sections",
    "sort_findings",
]
