"""``repro.analysis`` — AST-based static enforcement of the repo's invariants.

The reproduction's correctness story rests on contracts that are otherwise
enforced only at runtime or by convention: all model traffic flows through the
``ExecutionPolicy.build_engine()`` funnel, every stochastic component takes a
seeded ``Generator``, lock-guarded state is never touched lock-free, and
``to_dict``/``from_dict`` pairs round-trip exactly.  This package turns those
tribal rules into a static guardrail:

* a :class:`~repro.analysis.walker.Rule` protocol + registry with a
  single-parse, single-walk dispatcher (:func:`analyze_paths`);
* structured :class:`~repro.analysis.findings.Finding` records with text and
  JSON reporters;
* inline suppression pragmas (``# repro: allow[rule-id]``) for intentional,
  justified exceptions;
* a committed :class:`~repro.analysis.baseline.Baseline` so pre-existing debt
  is tracked without blocking CI.

Run it as ``python -m repro lint`` (see :mod:`repro.analysis.cli`); a
dedicated CI job fails on any non-baselined finding.  The package's own
modules are stdlib-only by design, so the analyzer can never be broken by the
scientific stack it lints (the ``python -m repro`` entry point still imports
the package root, which is where numpy comes in).
"""

from .baseline import DEFAULT_BASELINE, Baseline
from .cli import main
from .findings import SEVERITIES, Finding, sort_findings
from .pragmas import collect_pragmas, is_suppressed
from .report import render_json, render_text
from .walker import (
    LintResult,
    ModuleContext,
    Rule,
    analyze_paths,
    analyze_source,
    default_rules,
    register_rule,
    registered_rules,
)

__all__ = [
    "Baseline",
    "DEFAULT_BASELINE",
    "Finding",
    "LintResult",
    "ModuleContext",
    "Rule",
    "SEVERITIES",
    "analyze_paths",
    "analyze_source",
    "collect_pragmas",
    "default_rules",
    "is_suppressed",
    "main",
    "register_rule",
    "registered_rules",
    "render_json",
    "render_text",
    "sort_findings",
]
