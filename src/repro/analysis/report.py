"""Text and JSON reporters over a lint run.

Both reporters see the same split of findings — ``new`` (not baselined: these
fail the run) and ``baselined`` (accepted debt) — so the CI artifact and the
terminal output can never disagree about what gated the build.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .findings import Finding
from .walker import LintResult

#: Schema version of the JSON report (the CI artifact format).
REPORT_VERSION = 1


def render_text(
    result: LintResult,
    new: Sequence[Finding],
    baselined: Sequence[Finding],
    stale: Sequence[Finding] = (),
) -> str:
    """Human-oriented report: one line per new finding, then a summary."""
    lines: List[str] = [finding.format() for finding in new]
    if baselined:
        lines.append(f"({len(baselined)} baselined finding(s) not shown — tracked debt)")
    if stale:
        lines.append(
            f"({len(stale)} stale baseline entrie(s) — fixed debt; "
            "run --update-baseline to shrink the file)"
        )
    lines.append(
        f"{result.files_scanned} file(s) scanned: "
        f"{len(new)} new, {len(baselined)} baselined, "
        f"{result.suppressed} pragma-suppressed"
    )
    return "\n".join(lines)


def render_json(
    result: LintResult,
    new: Sequence[Finding],
    baselined: Sequence[Finding],
    stale: Sequence[Finding] = (),
) -> Dict[str, object]:
    """Machine-oriented report (uploaded as the CI findings artifact)."""
    def rows(findings: Sequence[Finding], status: str) -> List[Dict[str, object]]:
        return [dict(finding.to_dict(), status=status) for finding in findings]

    return {
        "version": REPORT_VERSION,
        "findings": rows(new, "new") + rows(baselined, "baselined"),
        "stale_baseline": rows(stale, "stale"),
        "summary": {
            "files_scanned": result.files_scanned,
            "total": len(new) + len(baselined),
            "new": len(new),
            "baselined": len(baselined),
            "suppressed": result.suppressed,
            "by_rule": result.by_rule(),
        },
    }


__all__ = ["REPORT_VERSION", "render_text", "render_json"]
