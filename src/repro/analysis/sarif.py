"""SARIF 2.1.0 rendering — lint findings as GitHub code-scanning input.

SARIF (Static Analysis Results Interchange Format) is the interchange format
GitHub's code-scanning UI consumes: uploading one file per lint run turns
every finding into an inline PR annotation with the rule's description
attached.  The renderer emits the minimal conformant subset — a single run,
the full rule table in ``tool.driver.rules``, one ``result`` per finding —
plus two things the repo's workflow depends on:

* **stable fingerprints**: ``partialFingerprints`` carries a hash of the
  baseline identity (rule, path, message — deliberately line-free, matching
  :meth:`~.findings.Finding.key`), so annotations track findings across
  unrelated edits instead of resurfacing as "new" when code above them moves;
* **baseline mapping**: baselined findings are emitted with a
  ``suppressions`` entry rather than dropped, so the scanning UI shows
  accepted debt as suppressed instead of silently losing it.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence

from .findings import Finding

#: SARIF spec version emitted (and the schema the output validates against).
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: Tool identity shown in the code-scanning UI.
TOOL_NAME = "repro-lint"


def _fingerprint(finding: Finding) -> str:
    """Line-free stable identity (matches the baseline's notion of "same")."""
    digest = hashlib.sha256("\x1f".join(finding.key()).encode("utf-8"))
    return digest.hexdigest()[:32]


def _result(finding: Finding, rule_index: Dict[str, int], suppressed: bool) -> Dict:
    message = finding.message
    if finding.hint:
        message = f"{message} (hint: {finding.hint})"
    row: Dict[str, object] = {
        "ruleId": finding.rule,
        "ruleIndex": rule_index[finding.rule],
        "level": finding.severity,
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": max(1, finding.line),
                        "startColumn": finding.col + 1,  # SARIF is 1-based
                    },
                }
            }
        ],
        "partialFingerprints": {"reproLintKey/v1": _fingerprint(finding)},
    }
    if suppressed:
        row["suppressions"] = [
            {
                "kind": "external",
                "justification": "accepted in lint-baseline.json (tracked debt)",
            }
        ]
    return row


def render_sarif(
    new: Sequence[Finding],
    baselined: Sequence[Finding] = (),
    rules: Optional[Sequence] = None,
) -> Dict[str, object]:
    """One SARIF 2.1.0 log for a lint run.

    ``rules`` is the active rule set (per-file and program rules together);
    when omitted, the full default registry is described, so the rule table
    is complete even on runs with zero findings.
    """
    if rules is None:
        from .program.registry import default_program_rules
        from .walker import default_rules

        rules = list(default_rules()) + list(default_program_rules())

    descriptors: List[Dict[str, object]] = []
    rule_index: Dict[str, int] = {}
    for rule in rules:
        rule_index[rule.rule_id] = len(descriptors)
        descriptors.append(
            {
                "id": rule.rule_id,
                "name": rule.name,
                "shortDescription": {"text": rule.description},
                "defaultConfiguration": {"level": rule.severity},
            }
        )

    # findings can reference the parse pseudo-rule, which has no class
    for finding in list(new) + list(baselined):
        if finding.rule not in rule_index:
            rule_index[finding.rule] = len(descriptors)
            descriptors.append(
                {
                    "id": finding.rule,
                    "name": finding.name,
                    "shortDescription": {"text": "file does not parse"},
                    "defaultConfiguration": {"level": "error"},
                }
            )

    results = [_result(finding, rule_index, suppressed=False) for finding in new]
    results += [_result(finding, rule_index, suppressed=True) for finding in baselined]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": "https://example.invalid/repro-lint",
                        "rules": descriptors,
                    }
                },
                "results": results,
            }
        ],
    }


__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "TOOL_NAME", "render_sarif"]
