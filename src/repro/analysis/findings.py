"""Structured findings emitted by the static-analysis rules.

A :class:`Finding` is one rule violation at one source location.  Findings are
plain serializable records so the text reporter, the JSON reporter and the
committed baseline file all speak the same format — and so the baseline can be
diffed in code review like any other artifact.

Baseline identity deliberately excludes the line/column: code above a finding
moves it without changing what it *is*, so two findings are "the same debt"
when rule, file and message agree (:meth:`Finding.key`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from ..exceptions import ConfigurationError

#: Finding severities, most severe first.  ``error`` findings gate CI;
#: ``warning`` findings are reported but never fail the lint run.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    rule:
        Rule identifier (``"REP001"``).
    name:
        Human-readable rule slug (``"engine-funnel"``) — also accepted by
        suppression pragmas.
    severity:
        ``"error"`` or ``"warning"``.
    path:
        File the finding is in (POSIX-style, as handed to the analyzer).
    line, col:
        1-based line and 0-based column of the offending node.
    message:
        What is wrong, specific to this site.
    hint:
        How to fix it (or how to justify it with a pragma).
    """

    rule: str
    name: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ConfigurationError(
                f"finding severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    def key(self) -> Tuple[str, str, str]:
        """Baseline identity: line numbers drift, (rule, path, message) pin."""
        return (self.rule, self.path, self.message)

    def format(self) -> str:
        """One text-reporter line for this finding."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule}[{self.name}] {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot (exact :meth:`from_dict` round-trip)."""
        return {
            "rule": self.rule,
            "name": self.name,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output, rejecting unknown keys."""
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown Finding fields: {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**dict(data))


def sort_findings(findings) -> list:
    """Deterministic reporting order: path, then line/column, then rule."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


__all__ = ["SEVERITIES", "Finding", "sort_findings"]
