"""Auxiliary information for weight-based seed sampling (RQ2).

Following Guerriero et al. (reference [10]), seeds should be sampled from the
operational dataset with weights built from *auxiliary information* that
indicates which data points are likely to cause failures.  Each function here
maps (model, inputs[, labels]) to non-negative scores where **higher means
"more likely to be buggy nearby"**; the sampler then combines them with the
operational-profile density.

All scores are normalised to ``[0, 1]`` over the batch so different sources
can be mixed on comparable scales.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np
from scipy.spatial import cKDTree

from ..config import EPSILON
from ..exceptions import ConfigurationError, SamplingError, ShapeError
from ..nn.metrics import prediction_margin
from ..types import Classifier

#: Signature of an auxiliary weight function.
WeightFunction = Callable[[Classifier, np.ndarray, Optional[np.ndarray]], np.ndarray]


def _normalise(scores: np.ndarray) -> np.ndarray:
    """Rescale scores to [0, 1]; a constant (or single-value) vector maps to ones."""
    scores = np.asarray(scores, dtype=float)
    if scores.size == 0:
        return scores
    low, high = float(scores.min()), float(scores.max())
    if high - low < EPSILON:
        return np.ones_like(scores)
    return (scores - low) / (high - low)


def margin_weight(
    model: Classifier, x: np.ndarray, y: Optional[np.ndarray] = None
) -> np.ndarray:
    """Low prediction margin → high weight (points near the decision boundary).

    When labels are available the margin is measured against the true class;
    otherwise against the predicted class (pure confidence).
    """
    # leaf callable: samplers funnel the model before handing it here
    probs = model.predict_proba(x)  # repro: allow[engine-funnel]
    if y is not None:
        margins = prediction_margin(probs, np.asarray(y, dtype=int))
    else:
        sorted_probs = np.sort(probs, axis=1)
        margins = sorted_probs[:, -1] - sorted_probs[:, -2]
    return _normalise(-margins)


def entropy_weight(
    model: Classifier, x: np.ndarray, y: Optional[np.ndarray] = None
) -> np.ndarray:
    """High predictive entropy → high weight (the model is unsure)."""
    # leaf callable: samplers funnel the model before handing it here
    probs = np.maximum(model.predict_proba(x), EPSILON)  # repro: allow[engine-funnel]
    entropy = -np.sum(probs * np.log(probs), axis=1)
    return _normalise(entropy)


def loss_weight(
    model: Classifier, x: np.ndarray, y: Optional[np.ndarray] = None
) -> np.ndarray:
    """High cross-entropy loss on the true label → high weight (requires labels)."""
    if y is None:
        raise SamplingError("loss_weight requires true labels")
    # leaf callable: samplers funnel the model before handing it here
    probs = np.maximum(model.predict_proba(x), EPSILON)  # repro: allow[engine-funnel]
    y = np.asarray(y, dtype=int)
    if y.shape[0] != probs.shape[0]:
        raise ShapeError("labels must align with inputs in loss_weight")
    losses = -np.log(probs[np.arange(len(y)), y])
    return _normalise(losses)


def gradient_norm_weight(
    model: Classifier, x: np.ndarray, y: Optional[np.ndarray] = None
) -> np.ndarray:
    """Large loss gradient w.r.t. the input → high weight (steep loss surface).

    Uses predicted labels when true labels are unavailable.
    """
    # leaf callable: samplers funnel the model before handing it here
    labels = np.asarray(y, dtype=int) if y is not None else model.predict(x)  # repro: allow[engine-funnel]
    gradients = model.loss_input_gradient(np.atleast_2d(x), labels)  # repro: allow[engine-funnel]
    norms = np.linalg.norm(np.atleast_2d(gradients), axis=1)
    return _normalise(norms)


class SurpriseWeight:
    """Distance-based surprise adequacy computed in input space.

    The surprise of an input is the ratio of (a) its distance to the nearest
    training point of the same (predicted) class to (b) its distance to the
    nearest training point of any other class.  Large surprise means the input
    sits in sparsely supported territory for its class — a classic indicator
    of likely misbehaviour.
    """

    def __init__(self, train_x: np.ndarray, train_y: np.ndarray) -> None:
        train_x = np.atleast_2d(np.asarray(train_x, dtype=float))
        train_y = np.asarray(train_y, dtype=int)
        if len(train_x) != len(train_y) or len(train_x) == 0:
            raise ConfigurationError("SurpriseWeight requires aligned, non-empty training data")
        self._trees: Dict[int, cKDTree] = {}
        self._other_trees: Dict[int, cKDTree] = {}
        classes = np.unique(train_y)
        if len(classes) < 2:
            raise ConfigurationError("SurpriseWeight requires at least two classes")
        for label in classes:
            same = train_x[train_y == label]
            other = train_x[train_y != label]
            self._trees[int(label)] = cKDTree(same)
            self._other_trees[int(label)] = cKDTree(other)
        self._classes = set(int(c) for c in classes)

    def __call__(
        self, model: Classifier, x: np.ndarray, y: Optional[np.ndarray] = None
    ) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        # leaf callable: samplers funnel the model before handing it here
        labels = np.asarray(y, dtype=int) if y is not None else model.predict(x)  # repro: allow[engine-funnel]
        surprises = np.zeros(len(x))
        for index, (row, label) in enumerate(zip(x, labels)):
            label = int(label)
            if label not in self._classes:
                surprises[index] = 1.0
                continue
            same_dist, _ = self._trees[label].query(row)
            other_dist, _ = self._other_trees[label].query(row)
            surprises[index] = same_dist / max(other_dist, EPSILON)
        return _normalise(surprises)


_REGISTRY: Dict[str, WeightFunction] = {
    "margin": margin_weight,
    "entropy": entropy_weight,
    "loss": loss_weight,
    "gradient-norm": gradient_norm_weight,
}


def weight_function_from_name(name: str) -> WeightFunction:
    """Look up a stateless auxiliary weight function by name."""
    if name not in _REGISTRY:
        raise SamplingError(
            f"unknown weight function {name!r}; expected one of {sorted(_REGISTRY)} "
            "(SurpriseWeight must be constructed explicitly with training data)"
        )
    return _REGISTRY[name]


def available_weight_functions() -> list[str]:
    """Names accepted by :func:`weight_function_from_name`."""
    return sorted(_REGISTRY)


__all__ = [
    "WeightFunction",
    "margin_weight",
    "entropy_weight",
    "loss_weight",
    "gradient_norm_weight",
    "SurpriseWeight",
    "weight_function_from_name",
    "available_weight_functions",
]
