"""Weight-based seed sampling from the operational dataset (RQ2)."""

from .samplers import (
    CellStratifiedSeedSampler,
    OperationalSeedSampler,
    SeedSampler,
    SeedSelection,
    UniformSeedSampler,
)
from .weights import (
    SurpriseWeight,
    WeightFunction,
    available_weight_functions,
    entropy_weight,
    gradient_norm_weight,
    loss_weight,
    margin_weight,
    weight_function_from_name,
)

__all__ = [
    "CellStratifiedSeedSampler",
    "OperationalSeedSampler",
    "SeedSampler",
    "SeedSelection",
    "UniformSeedSampler",
    "SurpriseWeight",
    "WeightFunction",
    "available_weight_functions",
    "entropy_weight",
    "gradient_norm_weight",
    "loss_weight",
    "margin_weight",
    "weight_function_from_name",
]
