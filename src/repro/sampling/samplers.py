"""Seed samplers: choosing where to spend the testing budget (RQ2).

A seed sampler selects rows of the operational dataset that the fuzzer will
attack.  The paper's requirement is two-fold: seeds must come from *high
density areas of the OP* (so that fixing the AEs found around them improves
delivered reliability) and from the *"buggy area"* of the input space (so the
budget is not wasted on robust regions).  :class:`OperationalSeedSampler`
combines the two via a product of powers; the other samplers are baselines and
ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..config import EPSILON, RngLike, ensure_rng
from ..data.dataset import Dataset
from ..data.partition import Partition
from ..exceptions import SamplingError
from ..op.profile import OperationalProfile
from ..runtime.policy import ExecutionPolicy
from ..types import Classifier
from .weights import WeightFunction, margin_weight


@dataclass
class SeedSelection:
    """Outcome of a sampling round.

    Attributes
    ----------
    indices:
        Row indices of the selected seeds in the operational dataset.
    x, y:
        The selected seeds and their labels.
    probabilities:
        Selection probability assigned to every row of the operational dataset
        (useful for diagnostics and for importance-weighted estimators).
    op_density:
        Operational density of each selected seed.
    failure_weight:
        Auxiliary failure-likelihood weight of each selected seed.
    """

    indices: np.ndarray
    x: np.ndarray
    y: np.ndarray
    probabilities: np.ndarray
    op_density: np.ndarray
    failure_weight: np.ndarray

    def __len__(self) -> int:
        return len(self.indices)


class SeedSampler:
    """Interface: select seeds from an operational dataset."""

    name: str = "sampler"

    def select(
        self,
        dataset: Dataset,
        model: Classifier,
        num_seeds: int,
        rng: RngLike = None,
    ) -> SeedSelection:
        """Select ``num_seeds`` seeds from ``dataset`` for testing."""
        raise NotImplementedError

    @staticmethod
    def _check_budget(dataset: Dataset, num_seeds: int) -> None:
        if num_seeds <= 0:
            raise SamplingError(f"num_seeds must be positive, got {num_seeds}")
        if len(dataset) == 0:
            raise SamplingError("cannot sample seeds from an empty dataset")

    def _funnel(self, model: Classifier):
        """Session over ``model`` via the sampler's execution policy.

        Weight functions are leaf callables: they receive whatever classifier
        the sampler hands them.  Funnelling here means every auxiliary-weight
        query is batched, cache-aware and counted in ``QueryStats``; a
        ``model`` that is already an engine passes through unchanged.
        """
        policy = getattr(self, "policy", None) or ExecutionPolicy()
        return policy.session(model)

    @staticmethod
    def _draw(
        probabilities: np.ndarray, num_seeds: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw without replacement when possible, with replacement otherwise."""
        n = len(probabilities)
        support = int(np.count_nonzero(probabilities > 0))
        if support == 0:
            raise SamplingError("all selection probabilities are zero")
        if num_seeds <= support:
            return rng.choice(n, size=num_seeds, replace=False, p=probabilities)
        return rng.choice(n, size=num_seeds, replace=True, p=probabilities)


@dataclass
class UniformSeedSampler(SeedSampler):
    """Uniform random seed selection — the baseline of conventional debug testing."""

    name: str = "uniform"

    def select(
        self,
        dataset: Dataset,
        model: Classifier,
        num_seeds: int,
        rng: RngLike = None,
    ) -> SeedSelection:
        self._check_budget(dataset, num_seeds)
        generator = ensure_rng(rng)
        probabilities = np.full(len(dataset), 1.0 / len(dataset))
        indices = self._draw(probabilities, num_seeds, generator)
        return SeedSelection(
            indices=indices,
            x=dataset.x[indices].copy(),
            y=dataset.y[indices].copy(),
            probabilities=probabilities,
            op_density=np.ones(len(indices)),
            failure_weight=np.ones(len(indices)),
        )


@dataclass
class OperationalSeedSampler(SeedSampler):
    """Weight-based sampling combining OP density and failure likelihood.

    The selection probability of operational-dataset row ``i`` is proportional
    to ``op_density(x_i) ** op_exponent * failure_weight(x_i) ** failure_exponent``.
    Setting either exponent to zero ablates that signal, which is exactly the
    ablation benchmark A1 runs.

    Parameters
    ----------
    profile:
        Operational profile used for the density term; when ``None`` the
        operational dataset is assumed to already follow the OP, so the
        density term degenerates to uniform.
    weight_function:
        Auxiliary failure-likelihood source (margin by default).
    op_exponent, failure_exponent:
        Non-negative exponents trading off the two signals.
    failure_floor:
        Floor applied to the (normalised) failure weight before mixing, i.e.
        ``failure <- floor + (1 - floor) * failure``.  Without a floor, robust
        points get a near-zero failure score which erases the OP-density
        signal entirely; the floor keeps "high OP but apparently robust"
        regions in play, which is what the paper's step 2 requires.
    use_labels:
        Whether the auxiliary weight may peek at the true labels of the
        operational dataset.
    policy:
        Execution policy used to funnel the model before the weight function
        queries it (default in-process policy when ``None``).
    """

    profile: Optional[OperationalProfile] = None
    weight_function: WeightFunction = margin_weight
    policy: Optional[ExecutionPolicy] = None
    op_exponent: float = 1.0
    failure_exponent: float = 2.0
    failure_floor: float = 0.02
    use_labels: bool = True
    name: str = "operational"

    def __post_init__(self) -> None:
        if self.op_exponent < 0 or self.failure_exponent < 0:
            raise SamplingError("exponents must be non-negative")
        if not 0.0 <= self.failure_floor < 1.0:
            raise SamplingError("failure_floor must be in [0, 1)")

    def select(
        self,
        dataset: Dataset,
        model: Classifier,
        num_seeds: int,
        rng: RngLike = None,
    ) -> SeedSelection:
        self._check_budget(dataset, num_seeds)
        generator = ensure_rng(rng)

        if self.profile is not None and self.op_exponent > 0:
            density = self.profile.density(dataset.x)
            density = density / max(float(density.mean()), EPSILON)
        else:
            density = np.ones(len(dataset))

        if self.failure_exponent > 0:
            labels = dataset.y if self.use_labels else None
            with self._funnel(model) as engine:
                failure = self.weight_function(engine, dataset.x, labels)
            failure = self.failure_floor + (1.0 - self.failure_floor) * failure
        else:
            failure = np.ones(len(dataset))

        scores = np.power(np.maximum(density, EPSILON), self.op_exponent) * np.power(
            np.maximum(failure, EPSILON), self.failure_exponent
        )
        total = scores.sum()
        if total <= 0:
            raise SamplingError("seed scores sum to zero; check the weight function")
        probabilities = scores / total
        indices = self._draw(probabilities, num_seeds, generator)
        return SeedSelection(
            indices=indices,
            x=dataset.x[indices].copy(),
            y=dataset.y[indices].copy(),
            probabilities=probabilities,
            op_density=density[indices],
            failure_weight=failure[indices],
        )


@dataclass
class CellStratifiedSeedSampler(SeedSampler):
    """Allocate seeds to partition cells proportionally to their OP mass.

    A stratified variant of :class:`OperationalSeedSampler` that guarantees
    coverage of every operationally relevant cell (useful when the reliability
    assessor needs evidence in each cell, see RQ5).  Within a cell, seeds are
    chosen by the auxiliary failure weight.
    """

    partition: Partition = None
    profile: OperationalProfile = None
    weight_function: WeightFunction = margin_weight
    policy: Optional[ExecutionPolicy] = None
    use_labels: bool = True
    min_per_cell: int = 0
    name: str = "cell-stratified"

    def __post_init__(self) -> None:
        if self.partition is None or self.profile is None:
            raise SamplingError("CellStratifiedSeedSampler requires a partition and a profile")
        if self.min_per_cell < 0:
            raise SamplingError("min_per_cell must be non-negative")

    def select(
        self,
        dataset: Dataset,
        model: Classifier,
        num_seeds: int,
        rng: RngLike = None,
    ) -> SeedSelection:
        self._check_budget(dataset, num_seeds)
        generator = ensure_rng(rng)
        cell_ids = self.partition.assign(dataset.x)
        cell_probs = self.profile.cell_probabilities(self.partition, rng=generator)

        occupied_cells = np.unique(cell_ids)
        occupied_mass = cell_probs[occupied_cells]
        if occupied_mass.sum() <= 0:
            occupied_mass = np.ones(len(occupied_cells))
        occupied_mass = occupied_mass / occupied_mass.sum()

        allocation = np.maximum(
            np.floor(occupied_mass * num_seeds).astype(int), self.min_per_cell
        )
        # distribute any remaining budget to the highest-mass cells
        while allocation.sum() < num_seeds:
            allocation[int(np.argmax(occupied_mass - allocation / max(num_seeds, 1)))] += 1
        # trim overshoot from the lowest-mass cells
        while allocation.sum() > num_seeds:
            positive = np.flatnonzero(allocation > self.min_per_cell)
            if len(positive) == 0:
                break
            allocation[positive[int(np.argmin(occupied_mass[positive]))]] -= 1

        labels = dataset.y if self.use_labels else None
        with self._funnel(model) as engine:
            failure = self.weight_function(engine, dataset.x, labels)
        selected: List[int] = []
        for cell, count in zip(occupied_cells, allocation):
            if count <= 0:
                continue
            members = np.flatnonzero(cell_ids == cell)
            member_scores = np.maximum(failure[members], EPSILON)
            member_probs = member_scores / member_scores.sum()
            take = min(count, len(members))
            chosen = generator.choice(members, size=take, replace=False, p=member_probs)
            selected.extend(chosen.tolist())
        if not selected:
            raise SamplingError("stratified sampling selected no seeds")
        indices = np.asarray(selected[:num_seeds], dtype=int)

        density = self.profile.density(dataset.x)
        density = density / max(float(density.mean()), EPSILON)
        probabilities = np.zeros(len(dataset))
        probabilities[indices] = 1.0 / len(indices)
        return SeedSelection(
            indices=indices,
            x=dataset.x[indices].copy(),
            y=dataset.y[indices].copy(),
            probabilities=probabilities,
            op_density=density[indices],
            failure_weight=failure[indices],
        )


__all__ = [
    "SeedSelection",
    "SeedSampler",
    "UniformSeedSampler",
    "OperationalSeedSampler",
    "CellStratifiedSeedSampler",
]
