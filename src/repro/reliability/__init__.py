"""Cell-based delivered-reliability assessment (RQ5, ReAsDL-style)."""

from .assessment import ReliabilityAssessor, ReliabilityEstimate, StoppingRule
from .bayesian import BayesianCellModel, BetaPrior, CellPosterior
from .cells import CellEvidence, CellEvidenceTable, CellRobustnessEvaluator

__all__ = [
    "ReliabilityAssessor",
    "ReliabilityEstimate",
    "StoppingRule",
    "BayesianCellModel",
    "BetaPrior",
    "CellPosterior",
    "CellEvidence",
    "CellEvidenceTable",
    "CellRobustnessEvaluator",
]
