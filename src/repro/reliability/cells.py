"""Per-cell robustness evidence for the reliability model (RQ5).

Following the ReAsDL assessment model the paper cites ([12], [13]), the input
domain is partitioned into small cells; the model's *unastuteness* in a cell
is the probability that a random input from that cell is misclassified with
respect to the cell's ground-truth label.  Delivered reliability then follows
by weighting per-cell unastuteness with the operational profile
(:mod:`repro.reliability.assessment`).

:class:`CellRobustnessEvaluator` produces that per-cell evidence: for each
cell it determines a ground-truth label (from the labelled data falling in the
cell), samples test points inside the cell, and records how many the model
gets wrong.  Cells without labelled support are reported separately so the
assessor can treat them conservatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..config import RngLike, ensure_rng
from ..data.dataset import Dataset
from ..data.partition import Partition
from ..exceptions import ReliabilityError
from ..types import Classifier


@dataclass
class CellEvidence:
    """Robustness evidence collected for one cell.

    Attributes
    ----------
    cell_id:
        Identifier of the cell in its partition.
    label:
        Ground-truth label assigned to the cell (majority label of the
        labelled data inside it); ``None`` when the cell has no support.
    trials:
        Number of test points evaluated inside the cell.
    failures:
        Number of those test points the model misclassified.
    support:
        Number of labelled data points that fell into the cell.
    """

    cell_id: int
    label: Optional[int]
    trials: int = 0
    failures: int = 0
    support: int = 0

    @property
    def unastuteness(self) -> float:
        """Empirical misclassification probability inside the cell."""
        if self.trials == 0:
            return 0.0
        return self.failures / self.trials

    def merge(self, other: "CellEvidence") -> "CellEvidence":
        """Combine evidence from two evaluation rounds of the same cell."""
        if other.cell_id != self.cell_id:
            raise ReliabilityError("cannot merge evidence from different cells")
        label = self.label if self.label is not None else other.label
        return CellEvidence(
            cell_id=self.cell_id,
            label=label,
            trials=self.trials + other.trials,
            failures=self.failures + other.failures,
            support=self.support + other.support,
        )


@dataclass
class CellEvidenceTable:
    """Evidence for every evaluated cell, keyed by cell id."""

    partition: Partition
    cells: Dict[int, CellEvidence] = field(default_factory=dict)
    queries: int = 0

    def add(self, evidence: CellEvidence) -> None:
        if evidence.cell_id in self.cells:
            self.cells[evidence.cell_id] = self.cells[evidence.cell_id].merge(evidence)
        else:
            self.cells[evidence.cell_id] = evidence

    def unastuteness_vector(self, default: float = 0.0) -> np.ndarray:
        """Per-cell unastuteness over the whole partition (``default`` where unseen)."""
        values = np.full(self.partition.num_cells, default, dtype=float)
        for cell_id, evidence in self.cells.items():
            values[cell_id] = evidence.unastuteness
        return values

    def trials_vector(self) -> np.ndarray:
        """Per-cell number of trials over the whole partition."""
        values = np.zeros(self.partition.num_cells, dtype=int)
        for cell_id, evidence in self.cells.items():
            values[cell_id] = evidence.trials
        return values

    def failures_vector(self) -> np.ndarray:
        """Per-cell number of observed failures over the whole partition."""
        values = np.zeros(self.partition.num_cells, dtype=int)
        for cell_id, evidence in self.cells.items():
            values[cell_id] = evidence.failures
        return values

    @property
    def evaluated_cells(self) -> List[int]:
        return sorted(self.cells)


class CellRobustnessEvaluator:
    """Collects per-cell misclassification evidence by sampling inside cells.

    Parameters
    ----------
    partition:
        Cell partition of the input space.
    samples_per_cell:
        Test points drawn inside each evaluated cell.
    perturbation_radius:
        Radius of the perturbations applied around labelled points when
        sampling test points (defaults to the cell radius).
    include_center:
        Also evaluate the labelled points themselves (counts towards trials).
    policy:
        :class:`~repro.runtime.ExecutionPolicy` for classifying the test
        points.  Evidence is bit-identical across policies.
    batch_size, engine, num_workers:
        **Deprecated** per-knob shims folding into ``policy`` (``engine``
        maps to ``policy.backend``); each emits a ``DeprecationWarning``.
    """

    def __init__(
        self,
        partition: Partition,
        samples_per_cell: int = 10,
        perturbation_radius: Optional[float] = None,
        include_center: bool = True,
        batch_size: Optional[int] = None,
        engine: Optional[str] = None,
        num_workers: Optional[int] = None,
        policy: Optional["ExecutionPolicy"] = None,
    ) -> None:
        from ..runtime.policy import ExecutionPolicy, resolve_legacy_knobs

        if samples_per_cell <= 0:
            raise ReliabilityError("samples_per_cell must be positive")
        self.policy = resolve_legacy_knobs(
            "CellRobustnessEvaluator",
            policy,
            ExecutionPolicy(),
            {
                "batch_size": ("batch_size", batch_size),
                "engine": ("backend", engine),
                "num_workers": ("num_workers", num_workers),
            },
            error=ReliabilityError,
            stacklevel=4,
        )
        self.partition = partition
        self.samples_per_cell = samples_per_cell
        self.perturbation_radius = perturbation_radius
        self.include_center = include_center

    def evaluate(
        self,
        model: Classifier,
        reference: Dataset,
        cell_ids: Optional[np.ndarray] = None,
        rng: RngLike = None,
    ) -> CellEvidenceTable:
        """Collect evidence for the cells occupied by ``reference``.

        Parameters
        ----------
        model:
            Model under test.
        reference:
            Labelled data providing each cell's ground-truth label and the
            anchor points around which test points are sampled.
        cell_ids:
            Optional subset of cells to evaluate; defaults to every cell that
            contains at least one reference point.
        """
        if len(reference) == 0:
            raise ReliabilityError("reference dataset must not be empty")
        generator = ensure_rng(rng)
        assignments = self.partition.assign(reference.x)
        table = CellEvidenceTable(partition=self.partition)

        if cell_ids is None:
            cell_ids = np.unique(assignments)

        # draw every cell's test points first (same RNG stream as the old
        # per-cell loop), then classify them all in one chunked pass
        pending: List[np.ndarray] = []
        metas: List[tuple] = []  # (cell_id, label, support, num_points)
        for cell_id in np.asarray(cell_ids, dtype=int):
            members = np.flatnonzero(assignments == cell_id)
            if len(members) == 0:
                table.add(CellEvidence(cell_id=int(cell_id), label=None))
                continue
            labels = reference.y[members]
            label = int(np.bincount(labels).argmax())
            test_points = self._cell_test_points(
                reference.x[members], int(cell_id), generator
            )
            pending.append(test_points)
            metas.append((int(cell_id), label, len(members), len(test_points)))

        if pending:
            with self.policy.session(model) as query_engine:
                predictions = np.asarray(
                    query_engine.predict(np.concatenate(pending, axis=0))
                )
            offset = 0
            for cell_id, label, support, num_points in metas:
                cell_predictions = predictions[offset : offset + num_points]
                offset += num_points
                table.add(
                    CellEvidence(
                        cell_id=cell_id,
                        label=label,
                        trials=num_points,
                        failures=int(np.sum(cell_predictions != label)),
                        support=support,
                    )
                )
                table.queries += num_points
        return table

    def _cell_test_points(
        self,
        anchors: np.ndarray,
        cell_id: int,
        generator: np.random.Generator,
    ) -> np.ndarray:
        """Sample the test points of one cell (anchors plus perturbed draws)."""
        radius = (
            self.perturbation_radius
            if self.perturbation_radius is not None
            else self.partition.cell_radius(cell_id)
        )
        candidates: List[np.ndarray] = []
        if self.include_center:
            candidates.append(anchors)
        picks = generator.integers(0, len(anchors), size=self.samples_per_cell)
        noise = generator.uniform(-radius, radius, size=(self.samples_per_cell, anchors.shape[1]))
        candidates.append(np.clip(anchors[picks] + noise, 0.0, 1.0))
        return np.concatenate(candidates, axis=0)


__all__ = ["CellEvidence", "CellEvidenceTable", "CellRobustnessEvaluator"]
