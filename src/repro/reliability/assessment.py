"""Delivered-reliability assessment (RQ5).

The headline statistic is the **probability of misclassification per input
(pmi)** under the operational profile:

    pmi = sum over cells  OP(cell) * unastuteness(cell)

where the per-cell unastuteness comes either from the empirical evidence
(:class:`repro.reliability.cells.CellEvidenceTable`) or from its conservative
Bayesian treatment (:mod:`repro.reliability.bayesian`).  The assessor also
reports operational accuracy (1 - pmi under the point estimate), a
conservative upper bound on pmi, and drives the stopping rule of the testing
loop: testing may stop when the conservative pmi bound falls below the
reliability target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..config import RngLike, ensure_rng
from ..data.dataset import Dataset
from ..data.partition import Partition
from ..exceptions import ReliabilityError
from ..nn.metrics import accuracy
from ..op.profile import OperationalProfile
from ..runtime.policy import ExecutionPolicy, resolve_legacy_knobs
from ..types import Classifier
from .bayesian import BayesianCellModel, BetaPrior
from .cells import CellEvidenceTable, CellRobustnessEvaluator


@dataclass
class ReliabilityEstimate:
    """Point and interval estimates of the delivered reliability.

    Attributes
    ----------
    pmi:
        Point estimate of the probability of misclassification per input.
    pmi_upper:
        Conservative upper bound on pmi at ``confidence``.
    pmi_lower:
        Optimistic lower bound on pmi at ``confidence``.
    operational_accuracy:
        ``1 - pmi`` (point estimate).
    confidence:
        One-sided confidence level of the bounds.
    cells_evaluated:
        Number of cells with at least one trial.
    total_op_mass_evaluated:
        OP probability mass of the evaluated cells (coverage of the OP).
    queries:
        Model queries spent collecting the evidence.
    """

    pmi: float
    pmi_upper: float
    pmi_lower: float
    operational_accuracy: float
    confidence: float
    cells_evaluated: int
    total_op_mass_evaluated: float
    queries: int = 0

    def meets_target(self, target_pmi: float, conservative: bool = True) -> bool:
        """Whether the estimate satisfies a reliability requirement on pmi."""
        if target_pmi <= 0:
            raise ReliabilityError("target_pmi must be positive")
        value = self.pmi_upper if conservative else self.pmi
        return value <= target_pmi

    def to_dict(self) -> dict:
        """JSON-serializable snapshot (the run registry's estimates format)."""
        return {
            "pmi": self.pmi,
            "pmi_upper": self.pmi_upper,
            "pmi_lower": self.pmi_lower,
            "operational_accuracy": self.operational_accuracy,
            "confidence": self.confidence,
            "cells_evaluated": self.cells_evaluated,
            "total_op_mass_evaluated": self.total_op_mass_evaluated,
            "queries": self.queries,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ReliabilityEstimate":
        """Rebuild an estimate saved with :meth:`to_dict` (exact round-trip)."""
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ReliabilityError(
                f"unknown ReliabilityEstimate fields: {sorted(unknown)}"
            )
        return cls(**data)


@dataclass
class StoppingRule:
    """Stopping rule of the testing regime (part of RQ5).

    Testing stops when the (conservative) pmi estimate meets the target, or
    when the campaign exhausts ``max_iterations`` or ``max_test_cases``.
    """

    target_pmi: float = 0.02
    confidence: float = 0.90
    conservative: bool = True
    max_iterations: int = 10
    max_test_cases: Optional[int] = None

    def __post_init__(self) -> None:
        if self.target_pmi <= 0:
            raise ReliabilityError("target_pmi must be positive")
        if not 0 < self.confidence < 1:
            raise ReliabilityError("confidence must be in (0, 1)")
        if self.max_iterations <= 0:
            raise ReliabilityError("max_iterations must be positive")
        if self.max_test_cases is not None and self.max_test_cases <= 0:
            raise ReliabilityError("max_test_cases must be positive when set")

    def should_stop(
        self,
        estimate: ReliabilityEstimate,
        iteration: int,
        test_cases_used: int,
    ) -> bool:
        """Decide whether the testing loop should stop after this iteration."""
        if estimate.meets_target(self.target_pmi, conservative=self.conservative):
            return True
        if iteration + 1 >= self.max_iterations:
            return True
        if self.max_test_cases is not None and test_cases_used >= self.max_test_cases:
            return True
        return False


class ReliabilityAssessor:
    """Cell-based reliability assessor in the style of ReAsDL.

    Parameters
    ----------
    partition:
        Cell partition of the input space.
    profile:
        Operational profile supplying the per-cell weights.
    evaluator:
        Collector of per-cell robustness evidence; a default one is built from
        the partition when omitted.
    prior:
        Beta prior for the conservative Bayesian treatment.
    confidence:
        One-sided credible level of the reported bounds.
    op_samples:
        Monte Carlo samples used to discretise the profile onto the partition.
    policy:
        :class:`~repro.runtime.ExecutionPolicy` for evidence collection
        (threaded into the default evaluator and the Monte Carlo estimator).
        Estimates are bit-identical across policies.
    batch_size, engine, num_workers:
        **Deprecated** per-knob shims folding into ``policy`` (``engine``
        maps to ``policy.backend``); each emits a ``DeprecationWarning``.
    """

    def __init__(
        self,
        partition: Partition,
        profile: OperationalProfile,
        evaluator: Optional[CellRobustnessEvaluator] = None,
        prior: Optional[BetaPrior] = None,
        confidence: float = 0.90,
        op_samples: int = 4096,
        batch_size: Optional[int] = None,
        engine: Optional[str] = None,
        num_workers: Optional[int] = None,
        policy: Optional[ExecutionPolicy] = None,
        rng: RngLike = None,
    ) -> None:
        if not 0 < confidence < 1:
            raise ReliabilityError("confidence must be in (0, 1)")
        self.policy = resolve_legacy_knobs(
            "ReliabilityAssessor",
            policy,
            ExecutionPolicy(),
            {
                "batch_size": ("batch_size", batch_size),
                "engine": ("backend", engine),
                "num_workers": ("num_workers", num_workers),
            },
            error=ReliabilityError,
            stacklevel=4,
        )
        self.partition = partition
        self.profile = profile
        self.evaluator = (
            evaluator
            if evaluator is not None
            else CellRobustnessEvaluator(
                partition,
                samples_per_cell=10,
                policy=self.policy,
            )
        )
        self.bayes = BayesianCellModel(prior=prior)
        self.confidence = confidence
        self._rng = ensure_rng(rng)
        self._cell_probs = profile.cell_probabilities(
            partition, num_samples=op_samples, rng=self._rng
        )

    # ------------------------------------------------------------------ #
    # assessment
    # ------------------------------------------------------------------ #
    @property
    def cell_probabilities(self) -> np.ndarray:
        """OP probability of every cell (cached at construction)."""
        return self._cell_probs.copy()

    def assess_from_evidence(self, table: CellEvidenceTable) -> ReliabilityEstimate:
        """Turn a cell-evidence table into a reliability estimate."""
        if table.partition is not self.partition:
            if table.partition.num_cells != self.partition.num_cells:
                raise ReliabilityError("evidence table uses an incompatible partition")
        weights = self._cell_probs
        point = self.bayes.posterior_means(table)
        upper = self.bayes.posterior_upper_bounds(table, self.confidence)
        lower_model = BayesianCellModel(prior=self.bayes.prior)
        lower = np.array(
            [
                lower_model.posterior_for(ev.trials, ev.failures, cid).lower_bound(self.confidence)
                if (ev := table.cells.get(cid)) is not None
                else 0.0
                for cid in range(self.partition.num_cells)
            ]
        )
        pmi = float(np.dot(weights, point))
        pmi_upper = float(np.dot(weights, upper))
        pmi_lower = float(np.dot(weights, lower))
        evaluated = table.trials_vector() > 0
        return ReliabilityEstimate(
            pmi=pmi,
            pmi_upper=pmi_upper,
            pmi_lower=pmi_lower,
            operational_accuracy=1.0 - pmi,
            confidence=self.confidence,
            cells_evaluated=int(evaluated.sum()),
            total_op_mass_evaluated=float(weights[evaluated].sum()),
            queries=table.queries,
        )

    def assess(
        self,
        model: Classifier,
        reference: Dataset,
        rng: RngLike = None,
    ) -> ReliabilityEstimate:
        """Collect fresh evidence for ``model`` and assess its reliability."""
        table = self.evaluator.evaluate(model, reference, rng=rng or self._rng)
        return self.assess_from_evidence(table)

    # ------------------------------------------------------------------ #
    # complementary estimators
    # ------------------------------------------------------------------ #
    def operational_accuracy_monte_carlo(
        self,
        model: Classifier,
        reference: Dataset,
        num_samples: int = 1000,
        rng: RngLike = None,
    ) -> float:
        """Directly estimate operational accuracy by sampling the OP.

        Samples are labelled by nearest-neighbour transfer from ``reference``;
        this estimator is an independent cross-check of ``1 - pmi``.
        """
        if num_samples <= 0:
            raise ReliabilityError("num_samples must be positive")
        from scipy.spatial import cKDTree

        generator = ensure_rng(rng or self._rng)
        samples = self.profile.sample(num_samples, generator)
        tree = cKDTree(reference.x)
        _, indices = tree.query(samples)
        labels = reference.y[indices]
        with self.policy.session(model) as query_engine:
            return accuracy(labels, np.asarray(query_engine.predict(samples)))

    def identify_weak_cells(
        self, table: CellEvidenceTable, top_k: int = 10
    ) -> List[int]:
        """Cells contributing most to pmi (OP mass x conservative unastuteness).

        These are the cells the next testing iteration should prioritise —
        this is the feedback loop from step 5 back to steps 2 and 3 in
        Figure 1.
        """
        if top_k <= 0:
            raise ReliabilityError("top_k must be positive")
        upper = self.bayes.posterior_upper_bounds(table, self.confidence)
        contribution = self._cell_probs * upper
        order = np.argsort(contribution)[::-1]
        return [int(c) for c in order[:top_k] if contribution[c] > 0]


__all__ = ["ReliabilityEstimate", "StoppingRule", "ReliabilityAssessor"]
