"""Bayesian estimators of per-cell unastuteness with conservative bounds.

The ReAsDL model the paper builds on produces *conservative* reliability
claims: instead of plugging in the empirical failure rate of each cell, it
maintains a Beta posterior over the cell's unastuteness and reports an upper
credible bound.  Cells with little or no evidence therefore contribute a
pessimistic (large) unastuteness, which is exactly the behaviour a safety
argument needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..exceptions import ReliabilityError
from .cells import CellEvidenceTable


@dataclass
class BetaPrior:
    """Beta prior over a cell's unastuteness.

    The default ``Beta(1, 9)`` encodes a weak prior belief that roughly 10 %
    of inputs in an arbitrary cell could be mishandled — deliberately
    pessimistic for unexplored cells, quickly overridden by evidence.
    """

    alpha: float = 1.0
    beta: float = 9.0

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.beta <= 0:
            raise ReliabilityError("Beta prior parameters must be positive")

    @property
    def mean(self) -> float:
        return self.alpha / (self.alpha + self.beta)


@dataclass
class CellPosterior:
    """Beta posterior over one cell's unastuteness."""

    cell_id: int
    alpha: float
    beta: float

    @property
    def mean(self) -> float:
        return self.alpha / (self.alpha + self.beta)

    def upper_bound(self, confidence: float = 0.95) -> float:
        """Upper credible bound at the given one-sided confidence level."""
        if not 0.0 < confidence < 1.0:
            raise ReliabilityError("confidence must be in (0, 1)")
        return float(stats.beta.ppf(confidence, self.alpha, self.beta))

    def lower_bound(self, confidence: float = 0.95) -> float:
        """Lower credible bound at the given one-sided confidence level.

        For ``confidence`` within float noise of 0.5 the two one-sided
        quantiles coincide; ``ppf`` is not strictly monotone at machine
        precision there, so the result is capped at the upper bound to keep
        ``lower <= upper`` always true.
        """
        if not 0.0 < confidence < 1.0:
            raise ReliabilityError("confidence must be in (0, 1)")
        lower = float(stats.beta.ppf(1.0 - confidence, self.alpha, self.beta))
        if 0.5 <= confidence <= 0.5 + 1e-9:
            lower = min(lower, float(stats.beta.ppf(confidence, self.alpha, self.beta)))
        return lower


class BayesianCellModel:
    """Maps cell evidence to Beta posteriors over unastuteness.

    Parameters
    ----------
    prior:
        Prior applied to every cell.
    unexplored_pessimistic:
        When ``True``, cells with zero trials keep the raw prior (pessimistic
        mean ~ ``prior.mean``); when ``False`` they are treated as perfectly
        astute (mean 0), which is only appropriate for non-safety analyses.
    """

    def __init__(self, prior: BetaPrior | None = None, unexplored_pessimistic: bool = True) -> None:
        self.prior = prior if prior is not None else BetaPrior()
        self.unexplored_pessimistic = unexplored_pessimistic

    def posterior_for(self, trials: int, failures: int, cell_id: int = -1) -> CellPosterior:
        """Posterior after observing ``failures`` in ``trials`` Bernoulli trials."""
        if trials < 0 or failures < 0 or failures > trials:
            raise ReliabilityError("invalid evidence: need 0 <= failures <= trials")
        return CellPosterior(
            cell_id=cell_id,
            alpha=self.prior.alpha + failures,
            beta=self.prior.beta + (trials - failures),
        )

    def posterior_means(self, table: CellEvidenceTable) -> np.ndarray:
        """Posterior mean unastuteness for every cell of the table's partition."""
        return self._vector(table, bound=None)

    def posterior_upper_bounds(
        self, table: CellEvidenceTable, confidence: float = 0.95
    ) -> np.ndarray:
        """Conservative (upper credible bound) unastuteness for every cell."""
        return self._vector(table, bound=confidence)

    def _vector(self, table: CellEvidenceTable, bound: float | None) -> np.ndarray:
        num_cells = table.partition.num_cells
        if self.unexplored_pessimistic:
            default_posterior = CellPosterior(-1, self.prior.alpha, self.prior.beta)
        else:
            default_posterior = CellPosterior(-1, 1e-3, 1e3)
        default_value = (
            default_posterior.mean if bound is None else default_posterior.upper_bound(bound)
        )
        values = np.full(num_cells, default_value, dtype=float)
        for cell_id, evidence in table.cells.items():
            posterior = self.posterior_for(evidence.trials, evidence.failures, cell_id)
            values[cell_id] = posterior.mean if bound is None else posterior.upper_bound(bound)
        return values


__all__ = ["BetaPrior", "CellPosterior", "BayesianCellModel"]
