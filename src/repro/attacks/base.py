"""Common interface for adversarial attacks.

An attack takes a batch of (correctly labelled) seeds and searches for inputs
inside an L∞ ball of radius ``epsilon`` around each seed that the model
misclassifies.  All attacks report the number of model queries they spent —
the paper's notion of "testing budget" is a number of test cases, i.e. model
queries, so every detection method must account for them consistently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..config import RngLike, clip01
from ..exceptions import AttackError, ShapeError
from ..runtime.policy import ExecutionPolicy
from ..types import Classifier


@dataclass
class AttackResult:
    """Outcome of attacking a batch of seeds.

    Attributes
    ----------
    adversarial_x:
        Best candidate found for every seed, shape ``(n, d)``.  For seeds
        where no misclassification was found this is the last candidate tried.
    success:
        Boolean mask: whether the candidate is misclassified.
    predicted_labels:
        Model predictions on ``adversarial_x``.
    queries:
        Total number of model forward passes spent on the batch.
    queries_per_seed:
        Queries attributable to each seed (sums to ``queries``).
    """

    adversarial_x: np.ndarray
    success: np.ndarray
    predicted_labels: np.ndarray
    queries: int
    queries_per_seed: np.ndarray

    @property
    def success_rate(self) -> float:
        """Fraction of seeds for which a misclassification was found."""
        if len(self.success) == 0:
            return 0.0
        return float(np.mean(self.success))

    def distances(self, seeds: np.ndarray, order: float = np.inf) -> np.ndarray:
        """Perturbation norms between ``seeds`` and the adversarial candidates."""
        seeds = np.atleast_2d(np.asarray(seeds, dtype=float))
        if seeds.shape != self.adversarial_x.shape:
            raise ShapeError("seeds must have the same shape as adversarial_x")
        diff = self.adversarial_x - seeds
        if order == np.inf:
            return np.max(np.abs(diff), axis=1)
        return np.linalg.norm(diff, ord=order, axis=1)


class Attack:
    """Base class for adversarial attacks (debug-testing test-case generators).

    ``policy`` (an :class:`~repro.runtime.ExecutionPolicy`) selects the
    execution backend for attacks that funnel their queries through an
    engine (the black-box attacks); the white-box gradient attacks query the
    model directly and ignore it.  Results are bit-identical across
    policies.
    """

    #: Human readable name used in reports.
    name: str = "attack"

    def __init__(
        self, epsilon: float = 0.1, policy: Optional[ExecutionPolicy] = None
    ) -> None:
        if epsilon <= 0:
            raise AttackError(f"epsilon must be positive, got {epsilon}")
        if policy is not None and not isinstance(policy, ExecutionPolicy):
            raise AttackError(
                f"{type(self).__name__}: policy must be an ExecutionPolicy, "
                f"got {type(policy).__name__} ({policy!r})"
            )
        self.epsilon = epsilon
        self.policy = policy if policy is not None else ExecutionPolicy()

    def run(
        self,
        model: Classifier,
        x: np.ndarray,
        y: np.ndarray,
        rng: RngLike = None,
    ) -> AttackResult:
        """Attack a batch of seeds ``x`` with true labels ``y``."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # shared helpers
    # ------------------------------------------------------------------ #
    def _engine_session(self, model: Classifier):
        """Query-engine session honouring the attack's execution policy.

        The returned context manager closes engines it created and passes
        pre-built engines through untouched.
        """
        return self.policy.session(model)

    @staticmethod
    def _validate_batch(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.atleast_1d(np.asarray(y, dtype=int))
        if len(x) != len(y):
            raise ShapeError("x and y must agree on the number of seeds")
        if len(x) == 0:
            raise AttackError("cannot attack an empty batch of seeds")
        return x, y

    def _project(self, candidates: np.ndarray, seeds: np.ndarray) -> np.ndarray:
        """Project candidates back into the L∞ ball and the [0, 1] domain."""
        lower = seeds - self.epsilon
        upper = seeds + self.epsilon
        return clip01(np.clip(candidates, lower, upper))


__all__ = ["Attack", "AttackResult"]
