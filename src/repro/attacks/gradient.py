"""Gradient-based attacks: FGSM and PGD (Madry et al., reference [11]).

These are the "existing attacking algorithms that perform well in efficiently
detecting AEs around seeds" the paper builds on for RQ3 — and, run on
uniformly chosen seeds, they are also the OP-ignorant state-of-the-art
baseline the proposed method is compared against.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import RngLike, ensure_rng
from ..exceptions import AttackError
from ..types import Classifier
from .base import Attack, AttackResult


class FGSM(Attack):
    """Fast Gradient Sign Method: one signed-gradient step of size epsilon."""

    name = "fgsm"

    def run(
        self,
        model: Classifier,
        x: np.ndarray,
        y: np.ndarray,
        rng: RngLike = None,
    ) -> AttackResult:
        x, y = self._validate_batch(x, y)
        # whitebox by design: attacks receive the classifier the caller chose
        # (the fuzzer installs its engine as `model`), and must see raw
        # gradients — wrapping here would double-count queries
        gradient = model.loss_input_gradient(x, y)  # repro: allow[engine-funnel]
        candidates = self._project(x + self.epsilon * np.sign(gradient), x)
        predictions = model.predict(candidates)  # repro: allow[engine-funnel]
        success = predictions != y
        n = len(x)
        # one gradient evaluation + one prediction per seed
        queries_per_seed = np.full(n, 2, dtype=int)
        return AttackResult(
            adversarial_x=candidates,
            success=success,
            predicted_labels=predictions,
            queries=int(queries_per_seed.sum()),
            queries_per_seed=queries_per_seed,
        )


class PGD(Attack):
    """Projected Gradient Descent with random start (L∞ threat model).

    Parameters
    ----------
    epsilon:
        Radius of the L∞ ball around each seed.
    step_size:
        Per-iteration step; defaults to ``epsilon / 4``.
    num_steps:
        Number of gradient iterations.
    random_start:
        Whether to start from a uniformly random point inside the ball.
    early_stop:
        Stop iterating on seeds that are already misclassified (saves queries).
    """

    name = "pgd"

    def __init__(
        self,
        epsilon: float = 0.1,
        step_size: Optional[float] = None,
        num_steps: int = 10,
        random_start: bool = True,
        early_stop: bool = True,
    ) -> None:
        super().__init__(epsilon)
        if num_steps <= 0:
            raise AttackError("num_steps must be positive")
        self.step_size = step_size if step_size is not None else epsilon / 4
        if self.step_size <= 0:
            raise AttackError("step_size must be positive")
        self.num_steps = num_steps
        self.random_start = random_start
        self.early_stop = early_stop

    def run(
        self,
        model: Classifier,
        x: np.ndarray,
        y: np.ndarray,
        rng: RngLike = None,
    ) -> AttackResult:
        x, y = self._validate_batch(x, y)
        generator = ensure_rng(rng)
        n = len(x)
        queries_per_seed = np.zeros(n, dtype=int)

        if self.random_start:
            start = x + generator.uniform(-self.epsilon, self.epsilon, size=x.shape)
            candidates = self._project(start, x)
        else:
            candidates = x.copy()

        best = candidates.copy()
        # whitebox by design: see FGSM.run — same justification for all three
        best_pred = model.predict(candidates)  # repro: allow[engine-funnel]
        queries_per_seed += 1
        best_success = best_pred != y
        active = ~best_success if self.early_stop else np.ones(n, dtype=bool)

        for _ in range(self.num_steps):
            if not np.any(active):
                break
            idx = np.flatnonzero(active)
            gradient = model.loss_input_gradient(candidates[idx], y[idx])  # repro: allow[engine-funnel]
            stepped = candidates[idx] + self.step_size * np.sign(gradient)
            candidates[idx] = self._project(stepped, x[idx])
            predictions = model.predict(candidates[idx])  # repro: allow[engine-funnel]
            queries_per_seed[idx] += 2  # one gradient + one prediction
            newly_success = predictions != y[idx]
            best[idx] = candidates[idx]
            best_pred[idx] = predictions
            best_success[idx] = newly_success
            if self.early_stop:
                active[idx[newly_success]] = False

        return AttackResult(
            adversarial_x=best,
            success=best_success,
            predicted_labels=best_pred,
            queries=int(queries_per_seed.sum()),
            queries_per_seed=queries_per_seed,
        )


__all__ = ["FGSM", "PGD"]
