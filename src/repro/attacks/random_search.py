"""Gradient-free attacks: random fuzzing, Gaussian noise and boundary nudging.

These serve two purposes: (i) black-box baselines for the detection-efficiency
comparison (a plain fuzzer spends many test cases per AE, which is exactly the
inefficiency of unguided operational testing the paper cites from Frankl et
al.), and (ii) mutation primitives reused by the operational fuzzer of RQ3.

All three attacks are fully vectorised across seeds *and* trials: candidate
matrices are generated up front and serviced by a handful of chunked
``predict`` calls through the :class:`repro.engine.BatchedQueryEngine`, while
the reported per-seed query counts remain exactly what the trial-by-trial
loop would have charged (a seed stops being billed at its first hit when the
attack early-stops).  Each attack's :class:`~repro.runtime.ExecutionPolicy`
selects the execution backend for those physical calls (the replicated
``"sharded"`` backend fans chunks out across worker processes with
bit-identical results); the legacy ``batch_size``/``engine``/``num_workers``
knobs survive as deprecated shims folding into the policy.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import RngLike, ensure_rng
from ..exceptions import AttackError
from ..runtime.policy import ExecutionPolicy, resolve_legacy_knobs
from ..types import Classifier
from .base import Attack, AttackResult


def _resolve_attack_policy(
    owner: str,
    policy: Optional[ExecutionPolicy],
    batch_size: Optional[int],
    engine: Optional[str],
    num_workers: Optional[int],
) -> ExecutionPolicy:
    """Shared legacy-knob shim of the black-box attacks (warns per knob)."""
    return resolve_legacy_knobs(
        owner,
        policy,
        ExecutionPolicy(),
        {
            "batch_size": ("batch_size", batch_size),
            "engine": ("backend", engine),
            "num_workers": ("num_workers", num_workers),
        },
        error=AttackError,
        stacklevel=5,
    )


class RandomFuzz(Attack):
    """Uniform random search inside the L∞ ball around each seed.

    Parameters
    ----------
    epsilon:
        Radius of the search ball.
    num_trials:
        Maximum random candidates evaluated per seed.
    early_stop:
        Stop billing a seed as soon as a misclassification is found.
    policy:
        Execution policy for the physical calls (backend, batching, workers
        — results are bit-identical across policies).
    batch_size, engine, num_workers:
        **Deprecated** shims folding into ``policy``.
    """

    name = "random-fuzz"

    def __init__(
        self,
        epsilon: float = 0.1,
        num_trials: int = 20,
        early_stop: bool = True,
        batch_size: Optional[int] = None,
        engine: Optional[str] = None,
        num_workers: Optional[int] = None,
        policy: Optional[ExecutionPolicy] = None,
    ) -> None:
        super().__init__(
            epsilon,
            policy=_resolve_attack_policy(
                "RandomFuzz", policy, batch_size, engine, num_workers
            ),
        )
        if num_trials <= 0:
            raise AttackError("num_trials must be positive")
        self.num_trials = num_trials
        self.early_stop = early_stop

    def run(
        self,
        model: Classifier,
        x: np.ndarray,
        y: np.ndarray,
        rng: RngLike = None,
    ) -> AttackResult:
        x, y = self._validate_batch(x, y)
        generator = ensure_rng(rng)

        def draw(block: int) -> np.ndarray:
            return generator.uniform(
                -self.epsilon, self.epsilon, size=(block, len(x), x.shape[1])
            )

        return _run_trial_matrix_attack(
            model, x, y, self.num_trials, draw, self, early_stop=self.early_stop
        )


class GaussianNoise(Attack):
    """Benign environmental perturbations: clipped Gaussian noise around the seed.

    Models the footnote-1 interpretation of "adversarial" examples as benign
    inputs perturbed by the natural environment rather than a malicious
    attacker.
    """

    name = "gaussian-noise"

    def __init__(
        self,
        epsilon: float = 0.1,
        std_fraction: float = 0.5,
        num_trials: int = 10,
        batch_size: Optional[int] = None,
        engine: Optional[str] = None,
        num_workers: Optional[int] = None,
        policy: Optional[ExecutionPolicy] = None,
    ) -> None:
        super().__init__(
            epsilon,
            policy=_resolve_attack_policy(
                "GaussianNoise", policy, batch_size, engine, num_workers
            ),
        )
        if not 0 < std_fraction <= 1:
            raise AttackError("std_fraction must be in (0, 1]")
        if num_trials <= 0:
            raise AttackError("num_trials must be positive")
        self.std_fraction = std_fraction
        self.num_trials = num_trials

    def run(
        self,
        model: Classifier,
        x: np.ndarray,
        y: np.ndarray,
        rng: RngLike = None,
    ) -> AttackResult:
        x, y = self._validate_batch(x, y)
        generator = ensure_rng(rng)
        std = self.epsilon * self.std_fraction

        def draw(block: int) -> np.ndarray:
            return generator.normal(0.0, std, size=(block, len(x), x.shape[1]))

        return _run_trial_matrix_attack(
            model, x, y, self.num_trials, draw, self, early_stop=True
        )


class BoundaryNudge(Attack):
    """Interpolate from the seed towards same-ball inputs of other classes.

    A simple decision-boundary probe: candidates are convex combinations of the
    seed and a random "target" direction, searched with bisection.  Useful as a
    gradient-free but informed baseline between random fuzzing and PGD.

    Direction probes and bisection steps run in lock-step across the whole
    batch: one physical model call per direction round and one per bisection
    level, instead of one per seed per probe.
    """

    name = "boundary-nudge"

    def __init__(
        self,
        epsilon: float = 0.1,
        num_directions: int = 5,
        num_bisections: int = 4,
        batch_size: Optional[int] = None,
        engine: Optional[str] = None,
        num_workers: Optional[int] = None,
        policy: Optional[ExecutionPolicy] = None,
    ) -> None:
        super().__init__(
            epsilon,
            policy=_resolve_attack_policy(
                "BoundaryNudge", policy, batch_size, engine, num_workers
            ),
        )
        if num_directions <= 0 or num_bisections <= 0:
            raise AttackError("num_directions and num_bisections must be positive")
        self.num_directions = num_directions
        self.num_bisections = num_bisections

    def run(
        self,
        model: Classifier,
        x: np.ndarray,
        y: np.ndarray,
        rng: RngLike = None,
    ) -> AttackResult:
        x, y = self._validate_batch(x, y)
        generator = ensure_rng(rng)
        with self._engine_session(model) as engine:
            return self._run_with_engine(engine, x, y, generator)

    def _run_with_engine(
        self,
        engine,
        x: np.ndarray,
        y: np.ndarray,
        generator: np.random.Generator,
    ) -> AttackResult:
        n, d = x.shape
        best = x.copy()
        best_pred = np.asarray(engine.predict(x))
        queries_per_seed = np.ones(n, dtype=int)
        best_success = best_pred != y

        directions = generator.choice(
            [-1.0, 1.0], size=(self.num_directions, n, d)
        )
        active = ~best_success
        for round_index in range(self.num_directions):
            idx = np.flatnonzero(active)
            if len(idx) == 0:
                break
            far = self._project(x[idx] + self.epsilon * directions[round_index, idx], x[idx])
            predictions = np.asarray(engine.predict(far))
            queries_per_seed[idx] += 1
            hit = predictions != y[idx]
            bisect_idx = idx[hit]
            if len(bisect_idx) == 0:
                continue

            # lock-step bisection: shrink towards the seeds while staying
            # misclassified, one batched probe per level
            seeds_b = x[bisect_idx]
            labels_b = y[bisect_idx]
            far_b = far[hit]
            candidate = far_b.copy()
            candidate_pred = predictions[hit].copy()
            lo = np.zeros(len(bisect_idx))
            hi = np.ones(len(bisect_idx))
            for _ in range(self.num_bisections):
                mid = (lo + hi) / 2
                probes = self._project(
                    seeds_b + mid[:, None] * (far_b - seeds_b), seeds_b
                )
                probe_pred = np.asarray(engine.predict(probes))
                queries_per_seed[bisect_idx] += 1
                miss = probe_pred != labels_b
                hi = np.where(miss, mid, hi)
                lo = np.where(miss, lo, mid)
                candidate[miss] = probes[miss]
                candidate_pred[miss] = probe_pred[miss]

            best[bisect_idx] = candidate
            best_pred[bisect_idx] = candidate_pred
            best_success[bisect_idx] = True
            active[bisect_idx] = False

        return AttackResult(
            adversarial_x=best,
            success=best_success,
            predicted_labels=best_pred,
            queries=int(queries_per_seed.sum()),
            queries_per_seed=queries_per_seed,
        )


def _run_trial_matrix_attack(
    model: Classifier,
    x: np.ndarray,
    y: np.ndarray,
    num_trials: int,
    draw_noise,
    attack: Attack,
    early_stop: bool,
) -> AttackResult:
    """Evaluate random trials across all seeds in memory-bounded blocks.

    ``draw_noise(block)`` must return a ``(block, n, d)`` noise tensor;
    drawing per block consumes the generator stream in the same order as one
    monolithic draw, so results are independent of the block size.  Blocks
    are sized so the candidate matrix stays around the policy's
    ``batch_size`` rows, and seeds that already hit stop being materialised
    and classified.
    Per-seed query accounting reproduces the trial-by-trial loop exactly (a
    seed is billed one query per trial until its first hit when
    ``early_stop`` is set, or for every trial otherwise).
    """
    with attack._engine_session(model) as engine:
        return _trial_matrix_with_engine(engine, x, y, num_trials, draw_noise, attack, early_stop)


def _trial_matrix_with_engine(
    engine,
    x: np.ndarray,
    y: np.ndarray,
    num_trials: int,
    draw_noise,
    attack: Attack,
    early_stop: bool,
) -> AttackResult:
    n, d = x.shape
    best = x.copy()
    best_pred = np.asarray(engine.predict(x))
    queries_per_seed = np.ones(n, dtype=int)
    best_success = best_pred != y
    # with early stopping, natural failures never search; the exhaustive
    # variant keeps billing (and overwriting) every seed, like the old loop
    active = ~best_success if early_stop else np.ones(n, dtype=bool)

    trials_per_block = max(1, attack.policy.batch_size // max(n, 1))
    trial = 0
    while trial < num_trials and np.any(active):
        block = min(trials_per_block, num_trials - trial)
        noise = draw_noise(block)
        idx = np.flatnonzero(active)
        candidates = attack._project(
            x[idx][None, :, :] + noise[:, idx],
            np.broadcast_to(x[idx], (block, len(idx), d)),
        )
        predictions = np.asarray(
            engine.predict(candidates.reshape(block * len(idx), d))
        ).reshape(block, len(idx))
        hits = predictions != y[idx][None, :]
        any_hit = hits.any(axis=0)
        first_hit = np.argmax(hits, axis=0)
        last_hit = block - 1 - np.argmax(hits[::-1], axis=0)
        # early-stopping keeps the first hit; the exhaustive loop's repeated
        # overwrites make the last hit win
        pick = first_hit if early_stop else last_hit

        if early_stop:
            queries_per_seed[idx] += np.where(any_hit, first_hit + 1, block)
        else:
            queries_per_seed[idx] += block

        hit_positions = np.flatnonzero(any_hit)
        seed_positions = idx[hit_positions]
        best[seed_positions] = candidates[pick[hit_positions], hit_positions]
        best_pred[seed_positions] = predictions[pick[hit_positions], hit_positions]
        best_success[seed_positions] = True
        if early_stop:
            active[seed_positions] = False
        trial += block

    return AttackResult(
        adversarial_x=best,
        success=best_success,
        predicted_labels=best_pred,
        queries=int(queries_per_seed.sum()),
        queries_per_seed=queries_per_seed,
    )


__all__ = ["RandomFuzz", "GaussianNoise", "BoundaryNudge"]
