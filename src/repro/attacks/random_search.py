"""Gradient-free attacks: random fuzzing, Gaussian noise and boundary nudging.

These serve two purposes: (i) black-box baselines for the detection-efficiency
comparison (a plain fuzzer spends many test cases per AE, which is exactly the
inefficiency of unguided operational testing the paper cites from Frankl et
al.), and (ii) mutation primitives reused by the operational fuzzer of RQ3.
"""

from __future__ import annotations

import numpy as np

from ..config import RngLike, ensure_rng
from ..exceptions import AttackError
from ..types import Classifier
from .base import Attack, AttackResult


class RandomFuzz(Attack):
    """Uniform random search inside the L∞ ball around each seed.

    Parameters
    ----------
    epsilon:
        Radius of the search ball.
    num_trials:
        Maximum random candidates evaluated per seed.
    early_stop:
        Stop fuzzing a seed as soon as a misclassification is found.
    """

    name = "random-fuzz"

    def __init__(self, epsilon: float = 0.1, num_trials: int = 20, early_stop: bool = True) -> None:
        super().__init__(epsilon)
        if num_trials <= 0:
            raise AttackError("num_trials must be positive")
        self.num_trials = num_trials
        self.early_stop = early_stop

    def run(
        self,
        model: Classifier,
        x: np.ndarray,
        y: np.ndarray,
        rng: RngLike = None,
    ) -> AttackResult:
        x, y = self._validate_batch(x, y)
        generator = ensure_rng(rng)
        n = len(x)
        best = x.copy()
        best_pred = model.predict(x)
        queries_per_seed = np.ones(n, dtype=int)
        best_success = best_pred != y
        active = ~best_success if self.early_stop else np.ones(n, dtype=bool)

        for _ in range(self.num_trials):
            if not np.any(active):
                break
            idx = np.flatnonzero(active)
            noise = generator.uniform(-self.epsilon, self.epsilon, size=(len(idx), x.shape[1]))
            candidates = self._project(x[idx] + noise, x[idx])
            predictions = model.predict(candidates)
            queries_per_seed[idx] += 1
            hit = predictions != y[idx]
            hit_idx = idx[hit]
            best[hit_idx] = candidates[hit]
            best_pred[hit_idx] = predictions[hit]
            best_success[hit_idx] = True
            if self.early_stop:
                active[hit_idx] = False

        return AttackResult(
            adversarial_x=best,
            success=best_success,
            predicted_labels=best_pred,
            queries=int(queries_per_seed.sum()),
            queries_per_seed=queries_per_seed,
        )


class GaussianNoise(Attack):
    """Benign environmental perturbations: clipped Gaussian noise around the seed.

    Models the footnote-1 interpretation of "adversarial" examples as benign
    inputs perturbed by the natural environment rather than a malicious
    attacker.
    """

    name = "gaussian-noise"

    def __init__(self, epsilon: float = 0.1, std_fraction: float = 0.5, num_trials: int = 10) -> None:
        super().__init__(epsilon)
        if not 0 < std_fraction <= 1:
            raise AttackError("std_fraction must be in (0, 1]")
        if num_trials <= 0:
            raise AttackError("num_trials must be positive")
        self.std_fraction = std_fraction
        self.num_trials = num_trials

    def run(
        self,
        model: Classifier,
        x: np.ndarray,
        y: np.ndarray,
        rng: RngLike = None,
    ) -> AttackResult:
        x, y = self._validate_batch(x, y)
        generator = ensure_rng(rng)
        n = len(x)
        std = self.epsilon * self.std_fraction
        best = x.copy()
        best_pred = model.predict(x)
        queries_per_seed = np.ones(n, dtype=int)
        best_success = best_pred != y
        active = ~best_success

        for _ in range(self.num_trials):
            if not np.any(active):
                break
            idx = np.flatnonzero(active)
            noise = generator.normal(0.0, std, size=(len(idx), x.shape[1]))
            candidates = self._project(x[idx] + noise, x[idx])
            predictions = model.predict(candidates)
            queries_per_seed[idx] += 1
            hit = predictions != y[idx]
            hit_idx = idx[hit]
            best[hit_idx] = candidates[hit]
            best_pred[hit_idx] = predictions[hit]
            best_success[hit_idx] = True
            active[hit_idx] = False

        return AttackResult(
            adversarial_x=best,
            success=best_success,
            predicted_labels=best_pred,
            queries=int(queries_per_seed.sum()),
            queries_per_seed=queries_per_seed,
        )


class BoundaryNudge(Attack):
    """Interpolate from the seed towards same-ball inputs of other classes.

    A simple decision-boundary probe: candidates are convex combinations of the
    seed and a random "target" direction, searched with bisection.  Useful as a
    gradient-free but informed baseline between random fuzzing and PGD.
    """

    name = "boundary-nudge"

    def __init__(self, epsilon: float = 0.1, num_directions: int = 5, num_bisections: int = 4) -> None:
        super().__init__(epsilon)
        if num_directions <= 0 or num_bisections <= 0:
            raise AttackError("num_directions and num_bisections must be positive")
        self.num_directions = num_directions
        self.num_bisections = num_bisections

    def run(
        self,
        model: Classifier,
        x: np.ndarray,
        y: np.ndarray,
        rng: RngLike = None,
    ) -> AttackResult:
        x, y = self._validate_batch(x, y)
        generator = ensure_rng(rng)
        n, d = x.shape
        best = x.copy()
        best_pred = model.predict(x)
        queries_per_seed = np.ones(n, dtype=int)
        best_success = best_pred != y

        for seed_index in range(n):
            if best_success[seed_index]:
                continue
            seed = x[seed_index]
            label = y[seed_index]
            for _ in range(self.num_directions):
                direction = generator.choice([-1.0, 1.0], size=d)
                far = self._project(seed + self.epsilon * direction, seed[None, :])[0]
                prediction = model.predict(far[None, :])[0]
                queries_per_seed[seed_index] += 1
                if prediction == label:
                    continue
                # bisection: shrink towards the seed while staying misclassified
                lo, hi = 0.0, 1.0
                candidate, candidate_pred = far, prediction
                for _ in range(self.num_bisections):
                    mid = (lo + hi) / 2
                    probe = self._project(seed + mid * (far - seed), seed[None, :])[0]
                    probe_pred = model.predict(probe[None, :])[0]
                    queries_per_seed[seed_index] += 1
                    if probe_pred != label:
                        hi = mid
                        candidate, candidate_pred = probe, probe_pred
                    else:
                        lo = mid
                best[seed_index] = candidate
                best_pred[seed_index] = candidate_pred
                best_success[seed_index] = True
                break

        return AttackResult(
            adversarial_x=best,
            success=best_success,
            predicted_labels=best_pred,
            queries=int(queries_per_seed.sum()),
            queries_per_seed=queries_per_seed,
        )


__all__ = ["RandomFuzz", "GaussianNoise", "BoundaryNudge"]
