"""Adversarial attacks: gradient-based (FGSM, PGD) and black-box baselines.

These are the AE detectors the paper treats as state of the art ("existing
attacking algorithms, e.g. Madry et al."); combined with uniform seed
selection they form the OP-ignorant baselines the operational testing loop is
evaluated against, and PGD doubles as the inner maximisation for adversarial
retraining (RQ4).
"""

from .base import Attack, AttackResult
from .gradient import FGSM, PGD
from .random_search import BoundaryNudge, GaussianNoise, RandomFuzz

_ATTACKS = {
    "fgsm": FGSM,
    "pgd": PGD,
    "random-fuzz": RandomFuzz,
    "gaussian-noise": GaussianNoise,
    "boundary-nudge": BoundaryNudge,
}


def attack_from_name(name: str, **kwargs) -> Attack:
    """Create an attack by its registry name (see :func:`available_attacks`)."""
    from ..exceptions import AttackError

    if name not in _ATTACKS:
        raise AttackError(f"unknown attack {name!r}; expected one of {sorted(_ATTACKS)}")
    return _ATTACKS[name](**kwargs)


def available_attacks() -> list[str]:
    """Names accepted by :func:`attack_from_name`."""
    return sorted(_ATTACKS)


__all__ = [
    "Attack",
    "AttackResult",
    "FGSM",
    "PGD",
    "BoundaryNudge",
    "GaussianNoise",
    "RandomFuzz",
    "attack_from_name",
    "available_attacks",
]
