"""Shared-memory worker heartbeats for supervised shard execution.

Each worker slot owns one ``double`` in a :mod:`multiprocessing` shared
array and stamps it with :func:`time.monotonic` every time it starts a
shard.  The coordinator reads the same array to distinguish a *slow* worker
(heartbeat moving — leave it alone) from a *hung or dead* one (heartbeat
stale past the retry policy's ``shard_timeout_s``).

The monotonic clock is comparable across processes on the platforms we run
on (Linux ``CLOCK_MONOTONIC`` is system-wide), and the array is written
without a lock: a torn read of a double is not possible on the supported
platforms, and even a stale read only delays detection by one poll
interval — it can never corrupt results, because supervision only decides
*where* a shard runs, never *what* it computes.

Audit note (REP008 seed finding): every read here goes through
:func:`repro.telemetry.clock.monotonic` — never ``time.time()`` — so a
wall-clock step (NTP jump, DST, manual reset) can neither fake a stale
heartbeat nor hide a hung worker.  The clock-discipline lint rule keeps it
that way.
"""

from __future__ import annotations

from typing import Sequence

from ..exceptions import ConfigurationError
from ..telemetry import clock


class WorkerHeartbeat:
    """Coordinator-side view of the per-worker heartbeat array.

    Parameters
    ----------
    num_workers:
        Worker slots to track.
    context:
        The :mod:`multiprocessing` context the worker pools are built from
        (the shared array must come from the same context to be inheritable
        by the pool initializer).
    """

    def __init__(self, num_workers: int, context) -> None:
        if num_workers <= 0:
            raise ConfigurationError("num_workers must be positive")
        # lock=False: single-writer-per-slot doubles need no synchronisation
        self.array = context.Array("d", num_workers, lock=False)
        now = clock.monotonic()
        for index in range(num_workers):
            self.array[index] = now

    def __len__(self) -> int:
        return len(self.array)

    def reset(self, worker: int) -> None:
        """Re-arm a slot's deadline (on spawn/respawn of its process)."""
        self.array[worker] = clock.monotonic()

    def age(self, worker: int) -> float:
        """Seconds since worker ``worker`` last touched its heartbeat."""
        return clock.monotonic() - self.array[worker]


def beat(array: Sequence[float], worker: int) -> None:
    """Worker-side stamp: touch ``worker``'s slot with the current time."""
    array[worker] = clock.monotonic()


__all__ = ["WorkerHeartbeat", "beat"]
