"""Supervised shard execution: detection, re-planning, respawn, degradation.

:class:`ShardSupervisor` wraps the pool dispatch of
:class:`repro.engine.ShardedQueryEngine`.  The engine stays responsible for
*what* runs (shard boundaries, worker functions, stats accounting); the
supervisor decides *where and when*: it polls outstanding futures with a
deadline, reads the shared worker heartbeats to tell a slow worker from a
hung one, SIGKILLs and respawns dead slots within the
:class:`repro.faults.RetryPolicy` budget, and re-plans lost shards onto
surviving workers.

Bit-identity survives every one of those decisions by construction:

* shard boundaries and concatenation order never change — supervision only
  moves a shard to a different (exact-replica) worker;
* re-assignment is the pure function :func:`reassign_worker` (deterministic
  in the shard index and the surviving-worker set), property-tested in
  ``tests/test_property_based.py``;
* stats deltas are absorbed only from futures actually harvested, so a
  killed execution never contributes counters — the non-fault counters of a
  faulted campaign equal the clean run's exactly.

When the retry budget is exhausted (``on_exhaustion="degrade"``), the
supervisor notifies the :func:`on_degrade` listeners (the workflow loop
registers one that writes a final checkpoint) and falls back to in-process
execution of the remaining shards — same chunks, same order, bit-identical
results, just slower.
"""

from __future__ import annotations

import time
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set

from .. import telemetry
from ..exceptions import ConfigurationError, FaultToleranceError
from ..telemetry import clock
from .heartbeat import WorkerHeartbeat
from .retry import RetryPolicy


# --------------------------------------------------------------------------- #
# deterministic re-planning (pure, property-tested)
# --------------------------------------------------------------------------- #
def reassign_worker(shard_index: int, alive_workers: Sequence[int]) -> int:
    """Deterministic new home for a shard whose worker is gone.

    ``sorted(alive)[shard_index % len(alive)]`` — the same round-robin shape
    as the original plan, over the surviving workers.  Pure in its inputs,
    so two coordinators observing the same failure make the same decision.
    """
    if not alive_workers:
        raise ConfigurationError("cannot reassign a shard: no alive workers")
    alive = sorted(set(alive_workers))
    return alive[shard_index % len(alive)]


def replan(shards: Sequence, alive_workers: Sequence[int]) -> List:
    """Re-plan a shard list onto the surviving workers.

    Shards whose worker survived keep their assignment; orphaned shards move
    via :func:`reassign_worker`.  Boundaries (``start``/``stop``) and order
    (``index``) are never touched — the partition invariants checked in
    ``tests/test_property_based.py`` hold by construction.
    """
    alive = set(alive_workers)
    return [
        shard
        if shard.worker in alive
        else replace(shard, worker=reassign_worker(shard.index, alive))
        for shard in shards
    ]


# --------------------------------------------------------------------------- #
# degradation listeners
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class DegradeEvent:
    """Published to :func:`on_degrade` listeners when a supervisor degrades."""

    reason: str


_DEGRADE_LISTENERS: List[Callable[[DegradeEvent], None]] = []


@contextmanager
def on_degrade(listener: Callable[[DegradeEvent], None]) -> Iterator[None]:
    """Register a degradation listener for the duration of a ``with`` block.

    The workflow loop uses this to write a final checkpoint the moment the
    engine gives up on its worker pool, *before* any in-process fallback
    work starts — nothing computed so far is lost if the host is about to
    go down with the workers.
    """
    _DEGRADE_LISTENERS.append(listener)
    try:
        yield
    finally:
        _DEGRADE_LISTENERS.remove(listener)


def _notify_degrade(event: DegradeEvent) -> None:
    for listener in list(_DEGRADE_LISTENERS):
        listener(event)


# --------------------------------------------------------------------------- #
# the supervisor
# --------------------------------------------------------------------------- #
class ShardSupervisor:
    """Deadline/heartbeat supervision over one engine's worker pools.

    Parameters
    ----------
    retry:
        The :class:`RetryPolicy` in force (``None`` → defaults).
    num_workers:
        Worker slots under supervision.
    heartbeat:
        The shared :class:`WorkerHeartbeat` the pool initializer handed to
        the workers.
    respawn_worker:
        Engine callback ``(worker, rebuild) -> None``: kill the slot's
        process and shut its pool down; when ``rebuild`` also install a
        fresh pool from the replica snapshot.
    absorb:
        Engine callback merging a :class:`QueryStats` delta (the engine's
        locked ``_absorb``).

    The supervisor is stateful across dispatches of one engine: respawn
    budgets, dead slots and the degraded flag persist until the engine
    closes (which discards the supervisor together with the pools).
    """

    def __init__(
        self,
        retry: Optional[RetryPolicy],
        num_workers: int,
        heartbeat: WorkerHeartbeat,
        respawn_worker: Callable[[int, bool], None],
        absorb: Callable[[object], None],
        poll_interval: Optional[float] = None,
    ) -> None:
        if num_workers <= 0:
            raise ConfigurationError("num_workers must be positive")
        self.retry = retry if retry is not None else RetryPolicy()
        self.num_workers = int(num_workers)
        self.heartbeat = heartbeat
        self._respawn_worker = respawn_worker
        self._absorb = absorb
        self.poll_interval = (
            float(poll_interval)
            if poll_interval is not None
            else min(0.05, self.retry.shard_timeout_s / 4.0)
        )
        self._respawns = [0] * self.num_workers
        self._dead: Set[int] = set()
        self.degraded = False

    # -- worker bookkeeping ------------------------------------------------ #
    def alive_workers(self) -> List[int]:
        return [w for w in range(self.num_workers) if w not in self._dead]

    def _stats_delta(self, **counters: int):
        # imported lazily: repro.engine imports this module at load time
        from ..engine.batching import QueryStats

        return QueryStats(**counters)

    @staticmethod
    def _unpack(result):
        """Split one harvested task result into ``(values, delta)``.

        Telemetry-armed process workers piggyback their span payload as a
        third element; it is merged into the coordinator's session here —
        the single point every harvested future passes through, so worker
        spans can never be lost to a code path that forgot to ingest them.
        A worker killed mid-shard never returns, so its in-flight spans die
        with it; the ``fault.worker_down`` gap event marks the hole.
        """
        if len(result) == 3:
            values, delta, payload = result
            telemetry.ingest_worker_payload(payload)
            return values, delta
        return result

    def _worker_down(self, worker: int, reason: str) -> None:
        """One slot's process died or hung: respawn within budget, else bury."""
        if worker in self._dead:
            return
        telemetry.observe("faults.heartbeat_age_s", self.heartbeat.age(worker))
        telemetry.count(
            "faults.hung_workers"
            if reason == "heartbeat stale"
            else "faults.dead_workers"
        )
        telemetry.event("fault.worker_down", "fault", worker=worker, reason=reason)
        self._respawns[worker] += 1
        attempt = self._respawns[worker]
        if attempt <= self.retry.max_respawns:
            # deterministic exponential backoff; timing never changes results
            delay = self.retry.backoff_delay(attempt)
            if delay > 0:
                time.sleep(delay)
            self._respawn_worker(worker, True)
            self.heartbeat.reset(worker)
            self._absorb(self._stats_delta(worker_respawns=1))
            telemetry.count("faults.worker_respawns")
        else:
            self._respawn_worker(worker, False)
            self._dead.add(worker)

    # -- degraded execution ------------------------------------------------ #
    def _enter_degraded(self, reason: str) -> None:
        if self.retry.on_exhaustion == "fail":
            raise FaultToleranceError(
                f"supervised execution exhausted its retry budget ({reason}) "
                "and the retry policy says on_exhaustion=fail"
            )
        if not self.degraded:
            self.degraded = True
            telemetry.count("faults.degrade_events")
            telemetry.event("fault.degraded", "fault", reason=reason)
            _notify_degrade(DegradeEvent(reason=reason))

    def _run_degraded(self, shard, run_local, pieces) -> None:
        values, delta = run_local(shard)
        self._absorb(delta)
        self._absorb(self._stats_delta(degraded_shards=1))
        telemetry.count("faults.degraded_shards")
        pieces[shard.index] = values

    # -- the dispatch loop ------------------------------------------------- #
    def execute(self, shards: Sequence, submit, run_local, decode=None) -> List:
        """Run every shard to completion, supervising the pool.

        ``submit(worker, shard)`` dispatches one shard to one worker slot
        and returns its future; ``run_local(shard)`` executes it in-process
        (the degradation fallback).  ``decode(shard, payload)``, when given,
        materialises a payload harvested *from a worker* (the shared-memory
        transport copies results out of its response ring here — the point
        after which the slot is safe to reuse); in-process fallback values
        never pass through it.  Returns the shard values in shard order.
        """
        pieces: List = [None] * len(shards)
        if self.degraded:
            for shard in shards:
                self._run_degraded(shard, run_local, pieces)
            return pieces

        attempts: Dict[int, int] = {}
        assigned: Dict[int, int] = {}
        futures: Dict[int, object] = {}
        # dispatch→complete round trips, recorded on the coordinator lane
        # (worker compute spans arrive separately via the shard payloads);
        # resolved once per dispatch so the disabled path pays nothing
        traced = telemetry.enabled()
        submitted: Dict[int, float] = {}

        def launch(shard) -> bool:
            """Place one shard on an alive worker; False when none can take it."""
            while True:
                alive = self.alive_workers()
                if not alive:
                    return False
                worker = (
                    shard.worker
                    if shard.worker in set(alive)
                    else reassign_worker(shard.index, alive)
                )
                try:
                    future = submit(worker, shard)
                except BrokenExecutor:
                    # the pool broke between dispatches (e.g. the worker was
                    # killed after its last shard) — handle and re-place
                    self._worker_down(worker, reason="pool broken at submit")
                    continue
                attempts[shard.index] = attempts.get(shard.index, 0) + 1
                assigned[shard.index] = worker
                futures[shard.index] = future
                if traced:
                    submitted[shard.index] = clock.monotonic()
                return True

        def reclaim(worker: int) -> None:
            """Re-plan the lost shards of a downed worker onto survivors."""
            for shard in shards:
                if pieces[shard.index] is not None or assigned.get(shard.index) != worker:
                    continue
                futures.pop(shard.index, None)
                assigned.pop(shard.index, None)
                if attempts.get(shard.index, 0) >= self.retry.max_attempts:
                    continue  # exhausted — surfaced when gathering reaches it
                if launch(shard):
                    self._absorb(self._stats_delta(shard_retries=1))
                    telemetry.count("faults.shard_retries")

        for shard in shards:
            if not self.degraded and not launch(shard):
                self._enter_degraded("no alive workers left to accept shards")
                break

        # gather in shard order: concatenation — and every campaign
        # outcome — is independent of which worker finishes first
        for shard in shards:
            while pieces[shard.index] is None:
                if self.degraded:
                    self._harvest_or_degrade(
                        shard, futures, assigned, run_local, pieces, decode
                    )
                    continue
                future = futures.get(shard.index)
                if future is None:
                    # lost with no retries left (or never placed)
                    self._enter_degraded(
                        f"shard {shard.index} exhausted its "
                        f"{self.retry.max_attempts} attempts"
                    )
                    continue
                worker = assigned[shard.index]
                try:
                    values, delta = self._unpack(
                        future.result(timeout=self.poll_interval)
                    )
                except FutureTimeoutError:
                    if self.heartbeat.age(worker) <= self.retry.shard_timeout_s:
                        continue  # still beating: slow or queued, not hung
                    self._worker_down(worker, reason="heartbeat stale")
                    reclaim(worker)
                except BrokenExecutor:
                    self._worker_down(worker, reason="worker process died")
                    reclaim(worker)
                else:
                    self._absorb(delta)
                    if traced and shard.index in submitted:
                        start = submitted.pop(shard.index)
                        telemetry.record_span(
                            f"shard-{shard.index}",
                            "dispatch",
                            start,
                            clock.monotonic() - start,
                            attrs={
                                "worker": worker,
                                "attempts": attempts.get(shard.index, 1),
                            },
                        )
                    pieces[shard.index] = (
                        decode(shard, values) if decode is not None else values
                    )
        return pieces

    def _harvest_or_degrade(
        self, shard, futures, assigned, run_local, pieces, decode=None
    ) -> None:
        """Degraded-mode finish for one shard: use a live result if present.

        Work already in flight on healthy workers is harvested (identical
        values, cheaper than recomputing); everything else runs in-process.
        """
        future = futures.pop(shard.index, None)
        worker = assigned.pop(shard.index, None)
        if future is not None and worker is not None and worker not in self._dead:
            try:
                values, delta = self._unpack(
                    future.result(timeout=self.retry.shard_timeout_s)
                )
            except (FutureTimeoutError, BrokenExecutor):
                self._worker_down(worker, reason="lost while degrading")
            else:
                self._absorb(delta)
                pieces[shard.index] = (
                    decode(shard, values) if decode is not None else values
                )
                return
        self._run_degraded(shard, run_local, pieces)


__all__ = [
    "DegradeEvent",
    "ShardSupervisor",
    "on_degrade",
    "reassign_worker",
    "replan",
]
