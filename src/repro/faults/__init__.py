"""Fault-tolerant execution: supervision, retry policy, fault injection.

The dependability layer under the execution funnel.  The sharded engine's
pool dispatch runs under a :class:`ShardSupervisor` (per-shard deadlines,
shared worker heartbeats, deterministic re-planning of lost shards,
bounded respawns); the knobs travel as a frozen, JSON-serializable
:class:`RetryPolicy` on :class:`repro.runtime.ExecutionPolicy`; and a
seeded :class:`FaultPlan` injects worker kills, shard delays and cache
corruption deterministically for chaos tests and benchmarks.

Everything here preserves the repo's bit-identity contract: supervision
decides *where and when* a shard runs, never *what* it computes, so a
campaign that survived worker deaths — or degraded all the way to
in-process execution — matches the clean run exactly (modulo the fault
counters on :class:`repro.engine.QueryStats`).
"""

from .heartbeat import WorkerHeartbeat
from .injection import FaultPlan, WorkerRuntime, corrupt_cache_segments
from .retry import ON_EXHAUSTION, RetryPolicy
from .supervision import (
    DegradeEvent,
    ShardSupervisor,
    on_degrade,
    reassign_worker,
    replan,
)

__all__ = [
    "ON_EXHAUSTION",
    "DegradeEvent",
    "FaultPlan",
    "RetryPolicy",
    "ShardSupervisor",
    "WorkerHeartbeat",
    "WorkerRuntime",
    "corrupt_cache_segments",
    "on_degrade",
    "reassign_worker",
    "replan",
]
