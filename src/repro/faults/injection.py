"""Deterministic fault injection for chaos tests and benchmarks.

A :class:`FaultPlan` describes, ahead of time and reproducibly, the faults a
campaign should suffer: *kill worker k after it has serviced n shards*
(a real ``SIGKILL``, not a mock), *delay shard m by t seconds* (exercises
the hung-worker path), and *corrupt cache segment s* (exercises the
per-record CRC path in :class:`repro.store.PersistentQueryCache`).  The
plan is JSON-serializable and carried on
:class:`repro.runtime.ExecutionPolicy`, so a chaos campaign is recorded in
``run.json`` exactly like a clean one — there is no wall-clock or RNG
nondeterminism anywhere in the harness; corruption byte positions derive
from the plan's ``seed`` alone.

Worker-side, the pool initializer installs a :class:`WorkerRuntime` that
stamps the shared heartbeat and applies kill/delay actions as shards
arrive.  Coordinator-side, :func:`corrupt_cache_segments` applies the cache
actions to a cache directory.  A process killed by its own plan dies
*before* computing the shard, so the shard is lost in flight and must be
re-planned by the supervisor — exactly the failure mode a real OOM-kill
produces.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..telemetry import clock


def _pairs(value: object, name: str, kinds: Tuple[type, ...]) -> Tuple[tuple, ...]:
    """Normalise a sequence of fixed-arity tuples, validating element types."""
    if value is None:
        return ()
    try:
        items = [tuple(item) for item in value]  # type: ignore[union-attr]
    except TypeError:
        raise ConfigurationError(f"{name} must be a sequence of pairs")
    normalised = []
    for item in items:
        if len(item) != len(kinds):
            raise ConfigurationError(
                f"each {name} entry must have {len(kinds)} elements, got {item!r}"
            )
        normalised.append(tuple(kind(element) for kind, element in zip(kinds, item)))
    return tuple(normalised)


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible schedule of injected faults.

    Attributes
    ----------
    kills:
        ``(worker, after_shards)`` pairs: worker slot ``worker`` SIGKILLs
        its own process when asked to run its ``after_shards + 1``-th shard
        (``after_shards=0`` dies on first contact).  A respawned slot gets a
        fresh runtime, so the same spec fires again — killing every slot
        with a tight respawn budget drives the engine into degradation.
    delays:
        ``(shard_index, seconds)`` pairs: whichever worker receives logical
        shard ``shard_index`` sleeps first.  With a delay longer than the
        retry policy's ``shard_timeout_s`` this simulates a hung worker.
    corrupt_segments:
        ``(segment_ordinal, num_bytes)`` pairs for
        :func:`corrupt_cache_segments`: flip ``num_bytes`` bytes in the
        ``segment_ordinal``-th cache segment (sorted filename order).
    seed:
        Drives the corruption byte positions (and nothing else).
    """

    kills: Tuple[Tuple[int, int], ...] = ()
    delays: Tuple[Tuple[int, float], ...] = ()
    corrupt_segments: Tuple[Tuple[int, int], ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "kills", _pairs(self.kills, "kills", (int, int)))
        object.__setattr__(self, "delays", _pairs(self.delays, "delays", (int, float)))
        object.__setattr__(
            self,
            "corrupt_segments",
            _pairs(self.corrupt_segments, "corrupt_segments", (int, int)),
        )
        for worker, after in self.kills:
            if worker < 0 or after < 0:
                raise ConfigurationError("kills entries must be non-negative")
        for shard, seconds in self.delays:
            if shard < 0 or seconds < 0:
                raise ConfigurationError("delays entries must be non-negative")
        for segment, num_bytes in self.corrupt_segments:
            if segment < 0 or num_bytes <= 0:
                raise ConfigurationError(
                    "corrupt_segments entries must be (segment >= 0, bytes > 0)"
                )

    def to_dict(self) -> Dict[str, object]:
        return {
            "kills": [list(pair) for pair in self.kills],
            "delays": [list(pair) for pair in self.delays],
            "corrupt_segments": [list(pair) for pair in self.corrupt_segments],
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output (unknown keys rejected)."""
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(f"unknown FaultPlan fields: {sorted(unknown)}")
        kwargs = dict(data)
        if "seed" in kwargs:
            kwargs["seed"] = int(kwargs["seed"])  # type: ignore[arg-type]
        return cls(**kwargs)  # type: ignore[arg-type]


class WorkerRuntime:
    """Worker-process-side heartbeat + fault-injection hooks.

    One instance lives per worker process (installed by the pool
    initializer); :meth:`on_shard` runs at the top of every shard task.
    """

    def __init__(
        self,
        worker_index: int,
        heartbeat: Optional[Sequence[float]],
        plan: Optional[FaultPlan],
    ) -> None:
        self.worker_index = worker_index
        self.heartbeat = heartbeat
        self.plan = plan
        self.serviced = 0

    def on_shard(self, shard_index: int) -> None:
        plan = self.plan
        if plan is not None:
            for worker, after_shards in plan.kills:
                if worker == self.worker_index and self.serviced >= after_shards:
                    # a real SIGKILL: the future never completes, the pool
                    # breaks, and the supervisor must notice and re-plan —
                    # exactly what an OOM-kill or segfault looks like
                    os.kill(os.getpid(), signal.SIGKILL)
        if self.heartbeat is not None:
            # monotonic via the telemetry clock: wall-clock steps must never
            # perturb heartbeat freshness (REP008)
            self.heartbeat[self.worker_index] = clock.monotonic()
        if plan is not None:
            for shard, seconds in plan.delays:
                if shard == shard_index and seconds > 0:
                    time.sleep(seconds)
        self.serviced += 1


def corrupt_cache_segments(plan: FaultPlan, cache_dir: object) -> int:
    """Apply the plan's cache-corruption actions to a cache directory.

    Flips bytes in place at positions drawn from ``default_rng(plan.seed)``
    — deterministic for a given plan and directory layout.  Segments are
    addressed by their ordinal in sorted filename order; out-of-range
    ordinals are ignored (the plan may predate cache rotation).  Returns
    the number of segments actually corrupted.
    """
    root = Path(cache_dir)
    if (root / "segments").is_dir():
        root = root / "segments"  # accept the store root or the segment dir
    segments = sorted(root.glob("seg-*.bin"))
    rng = np.random.default_rng(plan.seed)
    touched = 0
    for ordinal, num_bytes in plan.corrupt_segments:
        if ordinal >= len(segments):
            continue
        path = segments[ordinal]
        blob = bytearray(path.read_bytes())
        if not blob:
            continue
        for position in rng.integers(0, len(blob), size=num_bytes):
            blob[position] ^= 0xFF
        path.write_bytes(bytes(blob))
        touched += 1
    return touched


__all__ = ["FaultPlan", "WorkerRuntime", "corrupt_cache_segments"]
