"""Deterministic retry/backoff policy for supervised shard execution.

:class:`RetryPolicy` is the frozen, JSON-serializable knob set consumed by
:class:`repro.faults.ShardSupervisor`.  It is carried on
:class:`repro.runtime.ExecutionPolicy` and therefore recorded verbatim in
every ``CampaignSpec`` / ``run.json``, so a campaign that survived worker
deaths is reproducible and auditable from its stored spec alone.

Backoff is exponential-with-ceiling and *deterministic* (no jitter): retry
timing only affects wall time, never results — the bit-identity contract of
the sharded engine does not depend on when a shard is re-executed, only on
its boundaries and concatenation order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from ..exceptions import ConfigurationError

#: Accepted values for :attr:`RetryPolicy.on_exhaustion`.
ON_EXHAUSTION = ("degrade", "fail")


@dataclass(frozen=True)
class RetryPolicy:
    """How supervised execution reacts to dead, hung or exhausted workers.

    Attributes
    ----------
    max_attempts:
        Maximum executions per shard (first try included).  ``1`` disables
        shard retries entirely.
    max_respawns:
        Maximum times one worker slot is respawned after its process dies or
        hangs; beyond this the slot is declared dead and its shards are
        re-planned onto survivors.
    backoff_base_s, backoff_ceiling_s:
        Deterministic exponential backoff before a respawn:
        ``min(ceiling, base * 2**(respawn - 1))`` seconds.
    shard_timeout_s:
        Heartbeat staleness threshold.  A worker whose heartbeat has not
        moved for this long while a shard is outstanding is declared hung,
        killed and (within ``max_respawns``) respawned.
    on_exhaustion:
        ``"degrade"`` falls back to bit-identical in-process execution when
        no worker can serve a shard; ``"fail"`` raises
        :class:`repro.exceptions.FaultToleranceError` instead.
    """

    max_attempts: int = 2
    max_respawns: int = 2
    backoff_base_s: float = 0.05
    backoff_ceiling_s: float = 1.0
    shard_timeout_s: float = 120.0
    on_exhaustion: str = "degrade"

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")
        if self.max_respawns < 0:
            raise ConfigurationError("max_respawns must be non-negative")
        if self.backoff_base_s < 0 or self.backoff_ceiling_s < 0:
            raise ConfigurationError("backoff durations must be non-negative")
        if self.shard_timeout_s <= 0:
            raise ConfigurationError("shard_timeout_s must be positive")
        if self.on_exhaustion not in ON_EXHAUSTION:
            raise ConfigurationError(
                f"on_exhaustion must be one of {ON_EXHAUSTION}, "
                f"got {self.on_exhaustion!r}"
            )

    def backoff_delay(self, respawn: int) -> float:
        """Seconds to wait before the ``respawn``-th respawn (1-based)."""
        if respawn < 1:
            raise ConfigurationError("respawn count is 1-based")
        return min(self.backoff_ceiling_s, self.backoff_base_s * 2 ** (respawn - 1))

    def to_dict(self) -> Dict[str, object]:
        return {
            "max_attempts": self.max_attempts,
            "max_respawns": self.max_respawns,
            "backoff_base_s": self.backoff_base_s,
            "backoff_ceiling_s": self.backoff_ceiling_s,
            "shard_timeout_s": self.shard_timeout_s,
            "on_exhaustion": self.on_exhaustion,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RetryPolicy":
        """Rebuild a policy from :meth:`to_dict` output (unknown keys rejected)."""
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(f"unknown RetryPolicy fields: {sorted(unknown)}")
        kwargs: Dict[str, object] = dict(data)
        for field in ("max_attempts", "max_respawns"):
            if field in kwargs:
                kwargs[field] = int(kwargs[field])  # type: ignore[arg-type]
        for field in ("backoff_base_s", "backoff_ceiling_s", "shard_timeout_s"):
            if field in kwargs:
                kwargs[field] = float(kwargs[field])  # type: ignore[arg-type]
        return cls(**kwargs)  # type: ignore[arg-type]


__all__ = ["ON_EXHAUSTION", "RetryPolicy"]
