"""Plain-text reporting helpers for experiments and benchmarks.

The benchmarks print the same kind of rows/series a paper evaluation section
would tabulate; these helpers keep that formatting in one place and free of
any plotting dependencies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Sequence

from ..exceptions import ConfigurationError
from ..types import CampaignReport

if TYPE_CHECKING:  # only for annotations; reporting stays import-light
    from ..store.registry import StoredRun


def format_table(rows: Sequence[Mapping[str, object]], title: str = "") -> str:
    """Render a list of dict rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {c: len(str(c)) for c in columns}
    for row in rows:
        for column in columns:
            widths[column] = max(widths[column], len(_fmt(row.get(column, ""))))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(c).ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in columns))
    for row in rows:
        lines.append(
            " | ".join(_fmt(row.get(c, "")).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def campaign_to_rows(report: CampaignReport) -> List[Dict[str, object]]:
    """Flatten a workflow campaign report into printable rows (one per iteration)."""
    rows: List[Dict[str, object]] = []
    for iteration in report.iterations:
        rows.append(
            {
                "iter": iteration.iteration,
                "seeds": iteration.seeds_selected,
                "test-cases": iteration.test_cases_used,
                "AEs": iteration.aes_detected,
                "pmi-before": round(iteration.pmi_before, 4),
                "pmi-after": round(iteration.pmi_after, 4),
                "op-acc-after": round(iteration.operational_accuracy_after, 4),
                "target-met": iteration.target_met,
            }
        )
    return rows


#: The PR 7 supervision counters a chaos campaign accumulates; ``show``
#: renders them as their own section so a degraded run is obvious at a glance.
FAULT_COUNTERS = (
    "shard_retries",
    "worker_respawns",
    "degraded_shards",
    "cache_corrupt_records",
)


def run_summary_rows(runs: Sequence["StoredRun"]) -> List[Dict[str, object]]:
    """One ``python -m repro ls`` row per stored run."""
    rows: List[Dict[str, object]] = []
    for run in runs:
        row: Dict[str, object] = {
            "run": run.run_id,
            "name": run.name,
            "status": run.status,
        }
        if run.has_report():
            report = run.load_report()
            row["iters"] = report.num_iterations
            row["AEs"] = report.total_aes
            row["final-pmi"] = round(report.final_pmi, 4)
            row["target-met"] = report.target_met
        if run.has_telemetry():
            row["telemetry"] = "yes"
        rows.append(row)
    return rows


def run_summary_documents(runs: Sequence["StoredRun"]) -> List[Dict[str, object]]:
    """Machine-readable run summaries (``python -m repro ls --json``).

    Unlike :func:`run_summary_rows` (display-shaped), these documents keep
    exact values and include lifecycle timestamps and fault counters.
    """
    documents: List[Dict[str, object]] = []
    for run in runs:
        manifest = run.manifest
        doc: Dict[str, object] = {
            "run_id": run.run_id,
            "name": run.name,
            "status": run.status,
            "created_at": manifest.get("created_at"),
            "updated_at": manifest.get("updated_at"),
            "has_telemetry": run.has_telemetry(),
        }
        if run.has_report():
            report = run.load_report()
            doc["iterations"] = report.num_iterations
            doc["total_aes"] = report.total_aes
            doc["final_pmi"] = report.final_pmi
            doc["target_met"] = report.target_met
        stats = run.load_stats()
        if stats is not None:
            doc["fault_counters"] = {
                name: getattr(stats, name) for name in FAULT_COUNTERS
            }
        documents.append(doc)
    return documents


def render_stored_run(run: "StoredRun") -> str:
    """Render one registry artifact (``python -m repro show``) as plain text.

    The stored :class:`repro.runtime.CampaignSpec` document is rendered in
    full — it is the reproducible identity of the run (`python -m repro run
    --from-run <id>` re-launches from exactly this document).
    """
    import json

    manifest = run.manifest
    lines = [f"{run.run_id} ({run.name}) — {run.status}"]
    config = manifest.get("config", {})
    spec = config.get("spec") if isinstance(config, dict) else None
    if spec is not None:
        lines.append("campaign spec:")
        lines.extend(
            "  " + line
            for line in json.dumps(spec, indent=2, sort_keys=True).splitlines()
        )
    elif config:
        settings = ", ".join(
            f"{key}={value}" for key, value in sorted(config.items()) if value is not None
        )
        lines.append(f"config: {settings}")
    stats = run.load_stats()
    if stats is not None:
        stats_row = stats.to_dict()
        fault_row = {name: stats_row.pop(name) for name in FAULT_COUNTERS}
        lines.append("")
        lines.append(format_table([stats_row], title="engine stats"))
        lines.append("")
        lines.append(format_table([fault_row], title="fault counters"))
    if run.has_report():
        report = run.load_report()
        lines.append("")
        lines.append(format_table(campaign_to_rows(report), title="campaign"))
    detections = run.load_detections()
    lines.append("")
    lines.append(f"detections stored: {len(detections)}")
    estimates = run.load_estimates()
    if estimates:
        rows = [
            {"estimate": name, **estimate.to_dict()}
            for name, estimate in sorted(estimates.items())
        ]
        lines.append("")
        lines.append(format_table(rows, title="reliability estimates"))
    if run.has_telemetry():
        document = run.load_metrics()
        lines.append("")
        lines.append(
            f"telemetry: {document.get('spans_recorded', 0)} spans recorded "
            f"({document.get('spans_dropped', 0)} dropped), "
            f"{len(document.get('metrics', {}))} metrics — "
            f"`python -m repro trace {run.run_id}` renders the timeline"
        )
    return "\n".join(lines)


def summarize_series(name: str, xs: Sequence[float], ys: Sequence[float]) -> str:
    """Render an (x, y) series as a compact one-line-per-point listing."""
    if len(xs) != len(ys):
        raise ConfigurationError("series x and y must have the same length")
    lines = [name]
    for x, y in zip(xs, ys):
        lines.append(f"  {x:>10.4g} -> {y:.4g}")
    return "\n".join(lines)


__all__ = [
    "FAULT_COUNTERS",
    "format_table",
    "campaign_to_rows",
    "run_summary_rows",
    "run_summary_documents",
    "render_stored_run",
    "summarize_series",
]
