"""Reusable experiment scenarios shared by the examples and benchmarks.

A *scenario* bundles everything one evaluation run needs: a training dataset,
a trained model, a ground-truth operational profile (deliberately mismatched
with the balanced training data — the paper's motivating situation), an
operational dataset drawn from that profile, a fitted naturalness scorer and a
cell partition.  Centralising this avoids copy-pasted setup code and keeps
benchmark timings comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..config import RngLike, ensure_rng, spawn_rngs
from ..data.dataset import Dataset
from ..data.partition import Partition, build_partition_for_dataset
from ..data.synthetic import make_gaussian_clusters, make_glyph_digits, make_two_moons
from ..exceptions import ConfigurationError
from ..naturalness.metrics import NaturalnessScorer, default_naturalness_scorer
from ..nn.models import build_mlp_classifier
from ..nn.network import Sequential
from ..nn.optimizers import Adam
from ..nn.trainer import Trainer, TrainerConfig
from ..op.profile import (
    OperationalProfile,
    ground_truth_profile_for_clusters,
    profile_from_dataset,
)
from ..op.synthesis import synthesize_operational_dataset


@dataclass
class Scenario:
    """A fully prepared evaluation scenario."""

    name: str
    train_data: Dataset
    test_data: Dataset
    operational_data: Dataset
    model: Sequential
    profile: OperationalProfile
    naturalness: NaturalnessScorer
    partition: Partition
    operational_priors: np.ndarray

    def query_engine(
        self,
        policy: Optional["ExecutionPolicy"] = None,
        cache: Optional["CacheBackend"] = None,
        engine: Optional[str] = None,
        num_workers: Optional[int] = None,
        batch_size: Optional[int] = None,
    ):
        """Build a query engine over the scenario's model and scorer.

        ``policy`` (an :class:`~repro.runtime.ExecutionPolicy`) selects the
        execution backend — results are bit-identical across policies.
        ``cache`` is either ``None`` or a concrete
        :class:`~repro.engine.CacheBackend` instance, which overrides the
        policy's cache spec (enable the default in-memory cache with
        ``policy=ExecutionPolicy(cache=True)``).  Callers own the returned
        engine and should :meth:`~repro.engine.BatchedQueryEngine.close` it
        (or use it as a context manager) when a multi-worker backend was
        requested.

        The ``engine``/``num_workers``/``batch_size`` knobs are
        **deprecated** shims folding into ``policy``.
        """
        from ..engine.batching import CacheBackend
        from ..runtime.policy import ExecutionPolicy, resolve_legacy_knobs

        resolved = resolve_legacy_knobs(
            "Scenario.query_engine",
            policy,
            ExecutionPolicy(),
            {
                "engine": ("backend", engine),
                "num_workers": ("num_workers", num_workers),
                "batch_size": ("batch_size", batch_size),
            },
            stacklevel=4,
        )
        if cache is not None and not isinstance(cache, CacheBackend):
            raise ConfigurationError(
                "cache must be None or a CacheBackend instance "
                "(get/put/clear/__len__); enable the default in-memory cache "
                f"via policy=ExecutionPolicy(cache=True), got {cache!r}"
            )
        return resolved.build_engine(
            self.model, naturalness=self.naturalness, cache=cache
        )


def _train_model(
    train: Dataset,
    hidden_sizes: Sequence[int],
    epochs: int,
    learning_rate: float,
    rng: RngLike,
) -> Sequential:
    model = build_mlp_classifier(
        train.num_features, train.num_classes, hidden_sizes=hidden_sizes, rng=rng
    )
    trainer = Trainer(
        optimizer=Adam(learning_rate=learning_rate),
        config=TrainerConfig(epochs=epochs, batch_size=64),
        rng=rng,
    )
    # scenario construction trains the subject model itself — whitebox by
    # definition, and no campaign query budget exists yet at this point
    trainer.fit(model, train.x, train.y)  # repro: allow[engine-funnel]
    return model


def make_clusters_scenario(
    num_samples: int = 1200,
    num_classes: int = 4,
    cluster_std: float = 0.10,
    operational_priors: Optional[Sequence[float]] = None,
    epochs: int = 25,
    rng: RngLike = None,
) -> Scenario:
    """Gaussian-cluster scenario with an exact (analytic) operational profile.

    Training data is balanced; the operational profile concentrates most of
    the probability mass on a subset of classes, reproducing the
    training/operation mismatch that motivates the paper.
    """
    rngs = spawn_rngs(rng, 6)
    if operational_priors is None:
        operational_priors = [0.55, 0.25, 0.15, 0.05][:num_classes]
    priors = np.asarray(operational_priors, dtype=float)
    if priors.shape != (num_classes,):
        raise ConfigurationError("operational_priors must have one entry per class")
    priors = priors / priors.sum()

    full = make_gaussian_clusters(
        num_samples, num_classes=num_classes, cluster_std=cluster_std, rng=rngs[0]
    )
    train, test = full.split(0.25, rng=rngs[1])
    model = _train_model(train, hidden_sizes=(32, 16), epochs=epochs, learning_rate=0.01, rng=rngs[2])
    profile = ground_truth_profile_for_clusters(
        num_classes, full.num_features, cluster_std, class_priors=priors
    )
    operational = synthesize_operational_dataset(
        profile, size=1000, reference=full, rng=rngs[3]
    )
    naturalness = default_naturalness_scorer(
        train.x, profile=profile, use_autoencoder=False, rng=rngs[4]
    )
    partition = build_partition_for_dataset(full.x, scheme="grid", bins_per_dim=8)
    return Scenario(
        name="gaussian-clusters",
        train_data=train,
        test_data=test,
        operational_data=operational,
        model=model,
        profile=profile,
        naturalness=naturalness,
        partition=partition,
        operational_priors=priors,
    )


def make_moons_scenario(
    num_samples: int = 1200,
    noise: float = 0.07,
    operational_priors: Optional[Sequence[float]] = None,
    epochs: int = 30,
    rng: RngLike = None,
) -> Scenario:
    """Two-moons scenario (harder decision boundary, still 2-D and cheap)."""
    rngs = spawn_rngs(rng, 6)
    if operational_priors is None:
        operational_priors = [0.8, 0.2]
    priors = np.asarray(operational_priors, dtype=float)
    priors = priors / priors.sum()

    full = make_two_moons(num_samples, noise=noise, rng=rngs[0])
    train, test = full.split(0.25, rng=rngs[1])
    model = _train_model(train, hidden_sizes=(32, 16), epochs=epochs, learning_rate=0.01, rng=rngs[2])
    profile = profile_from_dataset(full, class_priors=priors, resample_noise=noise / 2)
    operational = synthesize_operational_dataset(
        profile, size=1000, reference=full, rng=rngs[3]
    )
    naturalness = default_naturalness_scorer(
        train.x, profile=profile, use_autoencoder=False, rng=rngs[4]
    )
    partition = build_partition_for_dataset(full.x, scheme="grid", bins_per_dim=8)
    return Scenario(
        name="two-moons",
        train_data=train,
        test_data=test,
        operational_data=operational,
        model=model,
        profile=profile,
        naturalness=naturalness,
        partition=partition,
        operational_priors=priors,
    )


def make_glyph_scenario(
    num_samples: int = 1500,
    image_size: int = 12,
    num_classes: int = 10,
    operational_priors: Optional[Sequence[float]] = None,
    epochs: int = 20,
    rng: RngLike = None,
) -> Scenario:
    """Glyph-digit (image-like) scenario with an empirical operational profile.

    The OP is skewed towards a few digit classes (as a deployed digit reader
    would see, e.g., postal codes dominated by a region's prefixes).
    """
    rngs = spawn_rngs(rng, 6)
    if operational_priors is None:
        base = np.array([0.30, 0.22, 0.16, 0.10, 0.07, 0.05, 0.04, 0.03, 0.02, 0.01])
        operational_priors = base[:num_classes]
    priors = np.asarray(operational_priors, dtype=float)
    priors = priors / priors.sum()

    full = make_glyph_digits(
        num_samples, image_size=image_size, num_classes=num_classes, rng=rngs[0]
    )
    train, test = full.split(0.25, rng=rngs[1])
    model = _train_model(train, hidden_sizes=(64, 32), epochs=epochs, learning_rate=0.005, rng=rngs[2])
    profile = profile_from_dataset(full, class_priors=priors, resample_noise=0.02)
    operational = synthesize_operational_dataset(
        profile, size=800, reference=full, rng=rngs[3]
    )
    naturalness = default_naturalness_scorer(
        train.x, profile=profile, use_autoencoder=True, rng=rngs[4]
    )
    partition = build_partition_for_dataset(
        full.x, scheme="anchor", radius=0.15, max_anchors=300, rng=rngs[5]
    )
    return Scenario(
        name="glyph-digits",
        train_data=train,
        test_data=test,
        operational_data=operational,
        model=model,
        profile=profile,
        naturalness=naturalness,
        partition=partition,
        operational_priors=priors,
    )


_SCENARIOS = {
    "gaussian-clusters": make_clusters_scenario,
    "two-moons": make_moons_scenario,
    "glyph-digits": make_glyph_scenario,
}


def make_scenario(name: str, rng: RngLike = None, **kwargs) -> Scenario:
    """Build a named scenario (``gaussian-clusters``, ``two-moons``, ``glyph-digits``)."""
    if name not in _SCENARIOS:
        raise ConfigurationError(
            f"unknown scenario {name!r}; expected one of {sorted(_SCENARIOS)}"
        )
    return _SCENARIOS[name](rng=rng, **kwargs)


def available_scenarios() -> list[str]:
    """Names accepted by :func:`make_scenario`."""
    return sorted(_SCENARIOS)


__all__ = [
    "Scenario",
    "make_clusters_scenario",
    "make_moons_scenario",
    "make_glyph_scenario",
    "make_scenario",
    "available_scenarios",
]
