"""Experiment scenarios and plain-text reporting used by examples and benchmarks."""

from .reporting import (
    campaign_to_rows,
    format_table,
    render_stored_run,
    run_summary_rows,
    summarize_series,
)
from .scenarios import (
    Scenario,
    available_scenarios,
    make_clusters_scenario,
    make_glyph_scenario,
    make_moons_scenario,
    make_scenario,
)

__all__ = [
    "campaign_to_rows",
    "format_table",
    "render_stored_run",
    "run_summary_rows",
    "summarize_series",
    "Scenario",
    "available_scenarios",
    "make_clusters_scenario",
    "make_glyph_scenario",
    "make_moons_scenario",
    "make_scenario",
]
