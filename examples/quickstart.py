"""Quickstart: detect operational adversarial examples for a small classifier.

This walks through the paper's pipeline on a 2-D synthetic problem in under a
minute:

1. train a classifier on balanced data,
2. define the operational profile (operation is dominated by one class),
3. detect *operational* AEs with OP-weighted seeds + naturalness-guided fuzzing,
4. retrain on what was found, and
5. assess the delivered reliability before and after,
6. (bonus) one ExecutionPolicy drives the runtime: checkpoint a campaign,
   "kill" it, and resume it bit-identically over a warm persistent query
   cache — then scale the same campaign with a policy switch, not a rewrite.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.core import OperationalAEDetection
from repro.data import build_partition_for_dataset, make_gaussian_clusters
from repro.evaluation import format_table
from repro.fuzzing import FuzzerConfig, OperationalFuzzer
from repro.naturalness import default_naturalness_scorer
from repro.nn import Adam, Trainer, TrainerConfig, accuracy, build_mlp_classifier
from repro.op import ground_truth_profile_for_clusters, synthesize_operational_dataset
from repro.reliability import ReliabilityAssessor
from repro.retraining import OperationalRetrainer, RetrainingConfig
from repro.runtime import ExecutionPolicy

SEED = 2021
CLUSTER_STD = 0.10
OPERATIONAL_PRIORS = [0.55, 0.25, 0.15, 0.05]  # operation is dominated by class 0


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. train a model on balanced data (the usual development situation)
    # ------------------------------------------------------------------ #
    dataset = make_gaussian_clusters(1200, num_classes=4, cluster_std=CLUSTER_STD, rng=SEED)
    train, test = dataset.split(0.25, rng=SEED + 1)
    model = build_mlp_classifier(2, 4, hidden_sizes=(32, 16), rng=SEED)
    Trainer(Adam(0.01), TrainerConfig(epochs=25, batch_size=64), rng=SEED).fit(
        model, train.x, train.y
    )
    print(f"test accuracy on balanced data: {accuracy(test.y, model.predict(test.x)):.3f}")

    # ------------------------------------------------------------------ #
    # 2. the operational profile: how the model will actually be used
    # ------------------------------------------------------------------ #
    profile = ground_truth_profile_for_clusters(
        4, 2, CLUSTER_STD, class_priors=OPERATIONAL_PRIORS
    )
    operational_data = synthesize_operational_dataset(profile, 800, reference=dataset, rng=SEED)
    print(
        "operational class frequencies:",
        np.round(operational_data.class_frequencies(), 3),
    )

    # ------------------------------------------------------------------ #
    # 3. detect operational AEs (OP-weighted seeds + naturalness-guided fuzzing)
    # ------------------------------------------------------------------ #
    naturalness = default_naturalness_scorer(train.x, profile=profile, rng=SEED)
    detector = OperationalAEDetection(profile=profile, naturalness=naturalness)
    detection = detector.detect(model, operational_data, budget=600, rng=SEED)
    print(
        f"detected {detection.num_detected} AEs with {detection.test_cases_used} test cases; "
        f"mean naturalness {detection.mean_naturalness():.2f}, "
        f"mean OP density {detection.mean_op_density():.2f}"
    )

    # ------------------------------------------------------------------ #
    # 4 + 5. retrain on the detected AEs and re-assess delivered reliability
    # ------------------------------------------------------------------ #
    partition = build_partition_for_dataset(dataset.x, scheme="grid", bins_per_dim=8)
    assessor = ReliabilityAssessor(partition, profile, confidence=0.9, rng=SEED)
    before = assessor.assess(model, operational_data, rng=SEED)

    retrainer = OperationalRetrainer(RetrainingConfig(epochs=6), profile=profile, rng=SEED)
    improved = retrainer.retrain(model, train, detection.adversarial_examples)
    after = assessor.assess(improved, operational_data, rng=SEED)

    rows = [
        {"model": "before retraining", "pmi": round(before.pmi, 4), "pmi-upper": round(before.pmi_upper, 4)},
        {"model": "after retraining", "pmi": round(after.pmi, 4), "pmi-upper": round(after.pmi_upper, 4)},
    ]
    print()
    print(format_table(rows, "delivered reliability (probability of misclassification per input)"))

    # ------------------------------------------------------------------ #
    # 6. the runtime API: one ExecutionPolicy drives the whole campaign
    # ------------------------------------------------------------------ #
    # An ExecutionPolicy captures the entire execution surface — backend,
    # workers, batching, caching, checkpoint cadence — in one serializable
    # object.  Here: a durable query cache (warm across runs and shareable
    # across hosts via a common directory) plus campaign snapshots every 2
    # population rounds, so a killed run resumes bit-identically.  Swapping
    # `backend="sharded", num_workers=4` later changes the hardware usage,
    # never the results.
    with tempfile.TemporaryDirectory() as store_dir:
        store = Path(store_dir)
        fuzz_config = FuzzerConfig(
            queries_per_seed=25,
            policy=ExecutionPolicy(
                cache=True,
                cache_dir=str(store / "cache"),
                checkpoint_every=2,
            ),
        )
        seeds_x, seeds_y = operational_data.x[:12], operational_data.y[:12]
        checkpoint = store / "campaign.ckpt"

        fuzzer = OperationalFuzzer(naturalness, config=fuzz_config, natural_pool=operational_data.x)
        first = fuzzer.fuzz(
            model, seeds_x, seeds_y, budget=300, rng=SEED, checkpoint_path=str(checkpoint)
        )
        cold_calls = fuzzer.last_query_stats.model_calls

        # pretend the campaign above was killed right after its last
        # checkpoint: resume it and it replays the tail to the same result
        resumed_fuzzer = OperationalFuzzer(
            naturalness, config=fuzz_config, natural_pool=operational_data.x
        )
        resumed = resumed_fuzzer.fuzz(
            model, seeds_x, seeds_y, budget=300, rng=SEED, resume_from=str(checkpoint)
        )
        same = (
            len(first.adversarial_examples) == len(resumed.adversarial_examples)
            and first.total_queries == resumed.total_queries
        )
        print()
        print(
            f"resumed campaign matches the uninterrupted one: {same} "
            f"({len(resumed.adversarial_examples)} AEs, "
            f"{resumed.total_queries} queries either way)"
        )

        # a brand-new process pointing at the same cache directory starts
        # warm: identical logical results, strictly fewer physical calls
        warm_fuzzer = OperationalFuzzer(
            naturalness, config=fuzz_config, natural_pool=operational_data.x
        )
        warm_fuzzer.fuzz(model, seeds_x, seeds_y, budget=300, rng=SEED)
        warm_calls = warm_fuzzer.last_query_stats.model_calls
        print(
            f"physical model calls — cold campaign: {cold_calls}, same campaign "
            f"over the warm persistent cache: {warm_calls}"
        )
    # For whole testing-loop campaigns the same policy drives everything
    # (`WorkflowConfig(policy=...)`), and a campaign is one declarative
    # spec file — scenario + fuzzer + workflow + stopping + policy + seed —
    # recorded verbatim in the run registry (see examples/campaign.json):
    #   python -m repro run --spec examples/campaign.json
    #   python -m repro show run-0001         # stored spec, stats, estimates
    #   python -m repro run --from-run run-0001   # reproduce it from the spec
    #   python -m repro resume run-0001       # after an interruption
    #
    # Add `--telemetry` (or `ExecutionPolicy(telemetry=True)`) and the run
    # also stores trace.jsonl + metrics.json — spans from sharded workers
    # included, merged across the process boundary — with zero overhead when
    # off and <3% when on, bit-identical results either way:
    #   python -m repro run --spec examples/campaign.json --telemetry
    #   python -m repro trace run-0002                   # per-worker timeline
    #   python -m repro trace run-0002 --chrome t.json   # open in Perfetto


if __name__ == "__main__":
    main()
