"""Quickstart: detect operational adversarial examples for a small classifier.

This walks through the paper's pipeline on a 2-D synthetic problem in under a
minute:

1. train a classifier on balanced data,
2. define the operational profile (operation is dominated by one class),
3. detect *operational* AEs with OP-weighted seeds + naturalness-guided fuzzing,
4. retrain on what was found, and
5. assess the delivered reliability before and after.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import OperationalAEDetection
from repro.data import build_partition_for_dataset, make_gaussian_clusters
from repro.evaluation import format_table
from repro.naturalness import default_naturalness_scorer
from repro.nn import Adam, Trainer, TrainerConfig, accuracy, build_mlp_classifier
from repro.op import ground_truth_profile_for_clusters, synthesize_operational_dataset
from repro.reliability import ReliabilityAssessor
from repro.retraining import OperationalRetrainer, RetrainingConfig

SEED = 2021
CLUSTER_STD = 0.10
OPERATIONAL_PRIORS = [0.55, 0.25, 0.15, 0.05]  # operation is dominated by class 0


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. train a model on balanced data (the usual development situation)
    # ------------------------------------------------------------------ #
    dataset = make_gaussian_clusters(1200, num_classes=4, cluster_std=CLUSTER_STD, rng=SEED)
    train, test = dataset.split(0.25, rng=SEED + 1)
    model = build_mlp_classifier(2, 4, hidden_sizes=(32, 16), rng=SEED)
    Trainer(Adam(0.01), TrainerConfig(epochs=25, batch_size=64), rng=SEED).fit(
        model, train.x, train.y
    )
    print(f"test accuracy on balanced data: {accuracy(test.y, model.predict(test.x)):.3f}")

    # ------------------------------------------------------------------ #
    # 2. the operational profile: how the model will actually be used
    # ------------------------------------------------------------------ #
    profile = ground_truth_profile_for_clusters(
        4, 2, CLUSTER_STD, class_priors=OPERATIONAL_PRIORS
    )
    operational_data = synthesize_operational_dataset(profile, 800, reference=dataset, rng=SEED)
    print(
        "operational class frequencies:",
        np.round(operational_data.class_frequencies(), 3),
    )

    # ------------------------------------------------------------------ #
    # 3. detect operational AEs (OP-weighted seeds + naturalness-guided fuzzing)
    # ------------------------------------------------------------------ #
    naturalness = default_naturalness_scorer(train.x, profile=profile, rng=SEED)
    detector = OperationalAEDetection(profile=profile, naturalness=naturalness)
    detection = detector.detect(model, operational_data, budget=600, rng=SEED)
    print(
        f"detected {detection.num_detected} AEs with {detection.test_cases_used} test cases; "
        f"mean naturalness {detection.mean_naturalness():.2f}, "
        f"mean OP density {detection.mean_op_density():.2f}"
    )

    # ------------------------------------------------------------------ #
    # 4 + 5. retrain on the detected AEs and re-assess delivered reliability
    # ------------------------------------------------------------------ #
    partition = build_partition_for_dataset(dataset.x, scheme="grid", bins_per_dim=8)
    assessor = ReliabilityAssessor(partition, profile, confidence=0.9, rng=SEED)
    before = assessor.assess(model, operational_data, rng=SEED)

    retrainer = OperationalRetrainer(RetrainingConfig(epochs=6), profile=profile, rng=SEED)
    improved = retrainer.retrain(model, train, detection.adversarial_examples)
    after = assessor.assess(improved, operational_data, rng=SEED)

    rows = [
        {"model": "before retraining", "pmi": round(before.pmi, 4), "pmi-upper": round(before.pmi_upper, 4)},
        {"model": "after retraining", "pmi": round(after.pmi, 4), "pmi-upper": round(after.pmi_upper, 4)},
    ]
    print()
    print(format_table(rows, "delivered reliability (probability of misclassification per input)"))


if __name__ == "__main__":
    main()
