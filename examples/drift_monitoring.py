"""Operational-profile drift: monitoring a deployed model and re-learning the OP.

The paper stresses that the operational profile is "not necessarily constant
after deployment".  This example simulates a deployment whose class mix shifts
over time (e.g. seasonal change in what a perception model sees), shows how a
windowed drift detector flags the change, and quantifies why it matters: the
delivered-reliability estimate computed under the stale OP diverges from the
one computed under the re-learned OP.

Run with:  python examples/drift_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro.data import build_partition_for_dataset, make_gaussian_clusters
from repro.evaluation import format_table
from repro.nn import Adam, Trainer, TrainerConfig, build_mlp_classifier
from repro.op import (
    DriftDetector,
    FrequencyProfileEstimator,
    OperationScenario,
    profile_from_dataset,
)
from repro.reliability import ReliabilityAssessor

SEED = 11
INITIAL_PRIORS = [0.6, 0.2, 0.1, 0.1]
FINAL_PRIORS = [0.05, 0.1, 0.25, 0.6]


def main() -> None:
    # ------------------------------------------------------------------ #
    # a deployed model and the OP assumed at release time
    # ------------------------------------------------------------------ #
    dataset = make_gaussian_clusters(1500, num_classes=4, cluster_std=0.09, rng=SEED)
    train, _ = dataset.split(0.25, rng=SEED)
    # the release-time training set under-represents classes 2 and 3 (they were
    # believed to be rare in operation), so the model is weaker exactly where
    # the post-deployment drift will concentrate the operational profile
    rng = np.random.default_rng(SEED)
    keep = np.ones(len(train), dtype=bool)
    for rare_class in (2, 3):
        members = train.indices_of_class(rare_class)
        drop = rng.choice(members, size=int(0.85 * len(members)), replace=False)
        keep[drop] = False
    train = train.subset(np.flatnonzero(keep))
    model = build_mlp_classifier(2, 4, hidden_sizes=(32, 16), rng=SEED)
    Trainer(Adam(0.01), TrainerConfig(epochs=25), rng=SEED).fit(model, train.x, train.y)

    assumed_profile = profile_from_dataset(dataset, class_priors=INITIAL_PRIORS)
    partition = build_partition_for_dataset(dataset.x, scheme="grid", bins_per_dim=8)
    detector = DriftDetector(
        partition=partition,
        assumed_profile=assumed_profile,
        threshold=0.08,
        patience=2,
        window_size=400,
        rng=SEED,
    )

    # ------------------------------------------------------------------ #
    # operation drifts from the initial priors to a very different mix
    # ------------------------------------------------------------------ #
    operation = OperationScenario(
        source=dataset,
        initial_priors=INITIAL_PRIORS,
        final_priors=FINAL_PRIORS,
        horizon=12,
        noise_std=0.01,
    )

    rows = []
    drift_step = None
    recent_batches = []
    for step, batch in enumerate(operation.stream(12, 150, rng=SEED)):
        report = detector.update(batch.x)
        recent_batches.append(batch)
        rows.append(
            {
                "step": step,
                "class-0 share": round(float(np.mean(batch.y == 0)), 2),
                "JS divergence": round(report.divergence, 4),
                "drift": report.drift_detected,
            }
        )
        if report.drift_detected and drift_step is None:
            drift_step = step
    print(format_table(rows, "operation stream vs the assumed operational profile"))
    print()

    if drift_step is None:
        print("no drift detected over the simulated horizon")
        return
    print(f"drift flagged at step {drift_step}; re-learning the OP from recent operation")

    # ------------------------------------------------------------------ #
    # re-learn the OP from the recent window and compare reliability views
    # ------------------------------------------------------------------ #
    recent = recent_batches[-3:]
    recent_x = np.concatenate([b.x for b in recent])
    recent_y = np.concatenate([b.y for b in recent])
    refreshed_profile = FrequencyProfileEstimator(reference=dataset).fit(recent_x, recent_y)
    detector.reset(refreshed_profile)

    stale_assessor = ReliabilityAssessor(partition, assumed_profile, confidence=0.9, rng=SEED)
    fresh_assessor = ReliabilityAssessor(partition, refreshed_profile, confidence=0.9, rng=SEED)
    reference = dataset.sample(600, rng=SEED)
    stale = stale_assessor.assess(model, reference, rng=SEED)
    fresh = fresh_assessor.assess(model, reference, rng=SEED)

    comparison = [
        {"OP used for assessment": "stale (release-time) OP", "pmi": round(stale.pmi, 4)},
        {"OP used for assessment": "re-learned OP", "pmi": round(fresh.pmi, 4)},
    ]
    print()
    print(format_table(comparison, "delivered reliability under stale vs re-learned OP"))
    gap = abs(stale.pmi - fresh.pmi)
    print(
        f"\nassessing reliability with the stale OP misestimates pmi by {gap:.4f} "
        f"({gap / max(fresh.pmi, 1e-12):.0%} of the true value) — "
        "the testing loop must re-enter step 1 and re-learn the OP."
    )


if __name__ == "__main__":
    main()
