"""Full workflow on an image-like workload: a deployed digit reader.

Scenario: a glyph-digit classifier (a stand-in for an MNIST-scale model) is
deployed where the digit frequencies are heavily skewed — think postal codes
in one region, where a few leading digits dominate.  The training data was
balanced, so the operational profile and the training distribution disagree.

The script runs the paper's five-step loop end to end (Figure 1): synthesise
the operational dataset from the OP, sample seeds, fuzz for operational AEs,
retrain with OP-aware weights and re-assess delivered reliability, iterating
until the pmi target is reached or the iteration cap fires.

Run with:  python examples/digit_reader_reliability.py
"""

from __future__ import annotations

import numpy as np

from repro.core import OperationalTestingLoop, WorkflowConfig
from repro.evaluation import campaign_to_rows, format_table, make_glyph_scenario
from repro.fuzzing import FuzzerConfig
from repro.nn import accuracy, weighted_accuracy
from repro.reliability import (
    BetaPrior,
    CellRobustnessEvaluator,
    ReliabilityAssessor,
    StoppingRule,
)
from repro.retraining import RetrainingConfig

SEED = 7


def main() -> None:
    # a reduced glyph scenario keeps the example under a couple of minutes; the
    # model is trained only briefly, as a freshly deployed reader would be
    scenario = make_glyph_scenario(
        num_samples=900, image_size=10, num_classes=8, epochs=8, rng=SEED
    )
    model = scenario.model
    test = scenario.test_data

    print("digit reader under test")
    print(f"  balanced test accuracy:      {accuracy(test.y, model.predict(test.x)):.3f}")
    operational_weights = scenario.profile.density(test.x)
    print(
        "  operational (OP-weighted) accuracy:"
        f" {weighted_accuracy(test.y, model.predict(test.x), operational_weights):.3f}"
    )
    print(f"  operational class priors:   {np.round(scenario.operational_priors, 3)}")
    print()

    # for the image-like (anchor-cell) partition the default assessor is very
    # conservative; use more trials per cell and a weaker prior so the pmi
    # estimate is driven by evidence rather than by the prior
    assessor = ReliabilityAssessor(
        partition=scenario.partition,
        profile=scenario.profile,
        evaluator=CellRobustnessEvaluator(scenario.partition, samples_per_cell=25),
        prior=BetaPrior(0.5, 24.5),
        confidence=0.85,
        rng=SEED,
    )
    loop = OperationalTestingLoop(
        profile=scenario.profile,
        train_data=scenario.train_data,
        partition=scenario.partition,
        naturalness=scenario.naturalness,
        fuzzer_config=FuzzerConfig(epsilon=0.15, queries_per_seed=20, naturalness_threshold=0.4),
        retraining_config=RetrainingConfig(epochs=4),
        stopping_rule=StoppingRule(target_pmi=0.02, confidence=0.85, max_iterations=3),
        workflow_config=WorkflowConfig(test_budget_per_iteration=400, seeds_per_iteration=20),
        assessor=assessor,
        rng=SEED,
    )
    improved_model, campaign = loop.run(model, scenario.operational_data)

    print(format_table(campaign_to_rows(campaign), "five-step loop, per iteration"))
    print()
    print(
        f"total test cases spent: {campaign.total_test_cases}, "
        f"operational AEs detected: {campaign.total_aes}, "
        f"final pmi: {campaign.final_pmi:.4f} "
        f"(target {loop.stopping_rule.target_pmi}, met: {campaign.target_met})"
    )
    print(
        "operational accuracy of the improved model: "
        f"{weighted_accuracy(test.y, improved_model.predict(test.x), operational_weights):.3f}"
    )


if __name__ == "__main__":
    main()
