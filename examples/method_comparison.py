"""Compare AE-detection methods under equal testing budgets (paper's E2 experiment).

Pits the proposed operational-AE detection against three baselines on the same
model, operational profile and test-case budgets, and prints the comparison
table the evaluation section of the paper would report.

Run with:  python examples/method_comparison.py
"""

from __future__ import annotations

from repro.core import (
    AttackOnUniformSeeds,
    MethodComparison,
    OperationalAECriterion,
    OperationalAEDetection,
    OperationalTestingBaseline,
    RandomFuzzBaseline,
)
from repro.evaluation import format_table, make_clusters_scenario

SEED = 2021
BUDGETS = [300, 600, 1200]


def main() -> None:
    scenario = make_clusters_scenario(rng=SEED)
    methods = [
        OperationalAEDetection(profile=scenario.profile, naturalness=scenario.naturalness),
        AttackOnUniformSeeds(
            profile=scenario.profile,
            naturalness=scenario.naturalness,
            seed_pool=scenario.train_data,
        ),
        RandomFuzzBaseline(
            profile=scenario.profile,
            naturalness=scenario.naturalness,
            seed_pool=scenario.train_data,
        ),
        OperationalTestingBaseline(profile=scenario.profile, naturalness=scenario.naturalness),
    ]
    criterion = OperationalAECriterion(min_naturalness=0.5, min_op_density=0.5)
    comparison = MethodComparison(methods, criterion)
    report = comparison.run(
        scenario.model, scenario.operational_data, budgets=BUDGETS, repeats=2, rng=SEED
    )
    print(format_table(report.as_rows(), "detection methods under equal test-case budgets"))
    print()
    for budget in BUDGETS:
        best = report.best_method_by_operational_aes(budget)
        print(f"most operational AEs at budget {budget}: {best}")


if __name__ == "__main__":
    main()
