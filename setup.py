"""Setuptools shim so ``pip install -e .`` works with older tooling.

All project metadata lives in ``pyproject.toml``; this file only exists to
enable legacy editable installs in environments without network access to
fetch modern build backends.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Operational adversarial example detection for reliable deep learning "
        "(DSN 2021 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21", "scipy>=1.7"],
)
