"""A2 — Cell granularity vs reliability-estimate quality and cost.

The ReAsDL-style assessment partitions the input space into cells; finer
partitions approximate the OP better but need more evidence per unit of
confidence.  This sweep varies the grid resolution and reports the pmi
estimate, its conservative upper bound, the OP mass actually covered by
evidence, and the number of model queries spent.
"""

from __future__ import annotations

from conftest import single_run

from repro.data import GridPartition
from repro.evaluation import format_table
from repro.reliability import CellRobustnessEvaluator, ReliabilityAssessor


RESOLUTIONS = [4, 8, 12, 16]


def _granularity_sweep(scenario):
    rows = []
    for bins in RESOLUTIONS:
        partition = GridPartition(2, bins_per_dim=bins)
        assessor = ReliabilityAssessor(
            partition=partition,
            profile=scenario.profile,
            evaluator=CellRobustnessEvaluator(partition, samples_per_cell=8),
            confidence=0.9,
            rng=0,
        )
        estimate = assessor.assess(scenario.model, scenario.operational_data, rng=0)
        rows.append(
            {
                "bins-per-dim": bins,
                "cells": partition.num_cells,
                "cells-evaluated": estimate.cells_evaluated,
                "op-mass-covered": round(estimate.total_op_mass_evaluated, 3),
                "pmi": round(estimate.pmi, 4),
                "pmi-upper": round(estimate.pmi_upper, 4),
                "queries": estimate.queries,
            }
        )
    return rows


def test_a2_cell_granularity(benchmark, clusters_scenario):
    rows = single_run(benchmark, _granularity_sweep, clusters_scenario)
    print()
    print(format_table(rows, "A2: partition granularity sweep"))
    # finer partitions cost more queries
    assert rows[-1]["queries"] >= rows[0]["queries"]
    # every resolution produces a valid estimate
    for row in rows:
        assert 0.0 <= row["pmi"] <= row["pmi-upper"] <= 1.0
