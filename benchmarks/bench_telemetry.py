"""Telemetry overhead benchmark: observability must be close to free.

Runs the PR 8 bulk workload (one big naturalness + ``predict_proba`` sweep
on the medium glyph scenario) with telemetry off and on, in-process and on
the two-worker shm-sharded backend, and records the wall-time ratio and the
result checksums.  Each arm takes the **minimum of several repeats**, and
measurement rounds **alternate the arm order** (off→on, on→off, …) keeping
per-arm minima — the overhead bound is a property of the instrumentation,
so neither scheduling noise nor monotonic thermal drift must be allowed to
masquerade as telemetry cost.

Two properties are validator-enforced when the section is embedded in
``BENCH_fuzzer.json`` (see ``benchmarks/bench_fuzzer_snapshot.py``):

* ``overhead_ratio < 1.03`` — the telemetry-on run costs less than 3%
  extra wall time on every row;
* ``checksums_identical`` — telemetry on and off produce bit-identical
  results (the observability layer never perturbs the computation).

Standalone use::

    PYTHONPATH=src python benchmarks/bench_telemetry.py [output.json]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro import telemetry
from repro.evaluation import make_glyph_scenario
from repro.runtime import ExecutionPolicy

SEED = 2021
BULK_ROWS = 2048
BATCH_SIZE = 256
NUM_WORKERS = 2
#: Minimum-of-N on both arms: the bound is about instrumentation cost, not
#: scheduler jitter, and min is the standard noise-robust statistic for it.
REPEATS = 5
#: The validator-enforced ceiling: telemetry adds <3% wall time.
MAX_OVERHEAD_RATIO = 1.03
#: A load spike or thermal drift during one arm's block inflates the ratio
#: even under min-of-REPEATS (the two arms run as sequential blocks, so
#: sustained contention lands asymmetrically — and a host that warms
#: monotonically always penalises whichever arm runs second).  Two
#: defences: rounds alternate the arm order (off→on, then on→off, …) so
#: drift cancels, and since noise can only *inflate* a minimum, each round
#: keeps the per-arm minimum.  At least two rounds always run (one per
#: order); rounds continue while the ratio sits above COMFORT_RATIO, so a
#: row that ships stopped clear of the ceiling, not a rounding error away.
MIN_ROUNDS = 2
MAX_ROUNDS = 4
COMFORT_RATIO = 1.02


def _bulk(scenario) -> np.ndarray:
    rng = np.random.default_rng(SEED)
    pool = scenario.operational_data.x
    picks = rng.integers(0, len(pool), size=BULK_ROWS)
    return np.clip(
        pool[picks] + rng.normal(0.0, 0.01, size=pool[picks].shape), 0.0, 1.0
    )


def _sweep(engine, bulk) -> tuple:
    start = time.perf_counter()
    naturalness = engine.score_naturalness(bulk)
    probs = engine.predict_proba(bulk)
    elapsed = time.perf_counter() - start
    return elapsed, float(naturalness.sum()) + float(probs.sum())


def _measure(engine, bulk) -> dict:
    """min-of-REPEATS wall time and checksum for one telemetry state.

    The first (untimed) sweep warms the engine in its *current* telemetry
    state — pool spawn, replica unpickling and the telemetry-rearm pool
    swap are one-time costs, not the steady-state overhead this measures.
    """
    _sweep(engine, bulk)
    times, checksums = [], set()
    for _ in range(REPEATS):
        elapsed, checksum = _sweep(engine, bulk)
        times.append(elapsed)
        checksums.add(checksum)
    assert len(checksums) == 1, "bulk sweep is not deterministic"
    return {"wall_time_s": min(times), "checksum": checksums.pop()}


def _row(mode: str, scenario, policy: ExecutionPolicy) -> dict:
    bulk = _bulk(scenario)
    off_s = on_s = float("inf")
    rounds = 0
    with scenario.query_engine(policy=policy) as engine:

        def measure_on():
            with telemetry.session() as sess:
                on = _measure(engine, bulk)
            return on, sess

        for rounds in range(1, MAX_ROUNDS + 1):
            if rounds % 2:
                off = _measure(engine, bulk)
                on, sess = measure_on()
            else:
                on, sess = measure_on()
                off = _measure(engine, bulk)
            checksum_identical = off["checksum"] == on["checksum"]
            off_s = min(off_s, off["wall_time_s"])
            on_s = min(on_s, on["wall_time_s"])
            if rounds >= MIN_ROUNDS and on_s / max(off_s, 1e-9) < COMFORT_RATIO:
                break
    ratio = on_s / max(off_s, 1e-9)
    return {
        "mode": mode,
        "rows": int(BULK_ROWS),
        "repeats": int(REPEATS),
        "rounds": rounds,
        "telemetry_off_s": round(off_s, 4),
        "telemetry_on_s": round(on_s, 4),
        "overhead_ratio": round(ratio, 4),
        "checksums_identical": checksum_identical,
        "checksum": round(off["checksum"], 6),
        "spans_recorded": len(sess.spans),
        "metrics_recorded": len(sess.metrics),
    }


def telemetry_section() -> dict:
    scenario = make_glyph_scenario(
        num_samples=900, image_size=12, num_classes=10, epochs=10, rng=SEED
    )
    rows = [
        _row(
            "in-process",
            scenario,
            ExecutionPolicy(backend="batched", batch_size=BATCH_SIZE),
        ),
        _row(
            "sharded-2-shm",
            scenario,
            ExecutionPolicy(
                backend="sharded",
                num_workers=NUM_WORKERS,
                transport="shm",
                batch_size=BATCH_SIZE,
            ),
        ),
    ]
    return {
        "description": "bulk naturalness+predict sweep, telemetry on vs off "
        f"(min of {REPEATS} repeats per arm)",
        "max_overhead_ratio": MAX_OVERHEAD_RATIO,
        "rows": rows,
    }


def validate_telemetry_section(section: dict) -> None:
    """The two validator-enforced contracts: <3% overhead, bit-identity."""
    ceiling = float(section["max_overhead_ratio"])
    for row in section["rows"]:
        if not row["checksums_identical"]:
            raise AssertionError(
                f"telemetry perturbed the {row['mode']} results: checksums "
                "differ between on and off"
            )
        if row["overhead_ratio"] >= ceiling:
            raise AssertionError(
                f"telemetry overhead on {row['mode']} is "
                f"{(row['overhead_ratio'] - 1) * 100:.1f}% "
                f"(ceiling {(ceiling - 1) * 100:.0f}%)"
            )
        if row["metrics_recorded"] <= 0:
            raise AssertionError(
                f"the telemetry-on {row['mode']} arm recorded no metrics — "
                "the instrumentation is not reaching the session"
            )
        if row["mode"] != "in-process" and row["spans_recorded"] <= 0:
            # sharded rows must show dispatch/shard spans crossing the
            # process boundary; the in-process bulk sweep is metrics-only
            raise AssertionError(
                f"the telemetry-on {row['mode']} arm recorded no spans — "
                "worker spans are not crossing the process boundary"
            )


def main(output: str | None = None) -> dict:
    section = telemetry_section()
    validate_telemetry_section(section)
    print(json.dumps(section, indent=2))
    if output:
        Path(output).write_text(json.dumps(section, indent=2) + "\n")
        print(f"\nwrote {Path(output).resolve()}")
    return section


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("output", nargs="?", default=None)
    main(parser.parse_args().output)
