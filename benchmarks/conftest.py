"""Shared fixtures for the benchmark/experiment harness.

Every benchmark regenerates one experiment from EXPERIMENTS.md.  Scenario
construction (data generation + model training + scorer fitting) is
session-scoped so that the timed portion of each benchmark is the experiment
itself, and the whole suite stays affordable on a laptop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation import make_clusters_scenario, make_glyph_scenario


@pytest.fixture(scope="session")
def clusters_scenario():
    """Headline low-dimensional scenario (exact ground-truth OP)."""
    return make_clusters_scenario(rng=2021)


@pytest.fixture(scope="session")
def small_glyph_scenario():
    """Reduced image-like scenario, sized so the whole suite stays fast."""
    return make_glyph_scenario(num_samples=800, image_size=10, num_classes=6, epochs=15, rng=2021)


def single_run(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
