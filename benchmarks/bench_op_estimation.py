"""E5 — Operational-profile estimation quality vs. amount of operational data (RQ1).

Measures how close each profile estimator gets to the ground-truth OP (in
Jensen–Shannon divergence over a shared cell partition) as the operational
sample grows, and how that compares against the naive assumption that the
balanced training distribution is the OP.
"""

from __future__ import annotations

import numpy as np
from conftest import single_run

from repro.data import GridPartition
from repro.evaluation import format_table
from repro.op import (
    FrequencyProfileEstimator,
    GMMProfileEstimator,
    KDEProfileEstimator,
    ground_truth_profile_for_clusters,
    profile_divergence,
    profile_from_dataset,
)


SAMPLE_SIZES = [50, 200, 1000]


def _estimation_error_curves(scenario):
    truth = scenario.profile
    partition = GridPartition(2, bins_per_dim=8)
    operational_x, operational_y = truth.sample_labeled(max(SAMPLE_SIZES), rng=11)
    balanced = profile_from_dataset(scenario.train_data)

    estimators = {
        "frequency": lambda x, y: FrequencyProfileEstimator(
            reference=scenario.train_data
        ).fit(x, y),
        "kde": lambda x, y: KDEProfileEstimator(rng=0).fit(x, y),
        "gmm": lambda x, y: GMMProfileEstimator(num_components=4, rng=0).fit(x, y),
    }

    rows = []
    for size in SAMPLE_SIZES:
        x, y = operational_x[:size], operational_y[:size]
        for name, fit in estimators.items():
            estimated = fit(x, y)
            divergence = profile_divergence(estimated, truth, partition, metric="js", rng=0)
            rows.append({"estimator": name, "samples": size, "js-to-truth": round(divergence, 4)})
    naive = profile_divergence(balanced, truth, partition, metric="js", rng=0)
    rows.append({"estimator": "balanced-training-data (naive)", "samples": 0, "js-to-truth": round(naive, 4)})
    return rows, naive


def test_e5_op_estimation_quality(benchmark, clusters_scenario):
    rows, naive = single_run(benchmark, _estimation_error_curves, clusters_scenario)
    print()
    print(format_table(rows, "E5: JS divergence of estimated OP to ground truth"))
    # with enough operational data every estimator beats the naive assumption
    for name in ("frequency", "kde", "gmm"):
        best = min(r["js-to-truth"] for r in rows if r["estimator"] == name)
        assert best < naive
    # more data should not make the frequency estimate worse
    freq = [r["js-to-truth"] for r in rows if r["estimator"] == "frequency"]
    assert freq[-1] <= freq[0] + 0.02
