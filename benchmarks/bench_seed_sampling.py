"""E6 — Seed-sampling strategies: weight-based sampling vs uniform (RQ2).

For each auxiliary-information source, measures (a) how failure-prone the
selected seeds are (fraction whose epsilon-cell contains an AE, estimated with
a PGD probe) and (b) how much operational-profile mass the seeds carry.  The
paper's requirement is that seeds score highly on both.
"""

from __future__ import annotations

import numpy as np
from conftest import single_run

from repro.attacks import PGD
from repro.evaluation import format_table
from repro.sampling import (
    OperationalSeedSampler,
    SurpriseWeight,
    UniformSeedSampler,
    entropy_weight,
    gradient_norm_weight,
    loss_weight,
    margin_weight,
)


NUM_SEEDS = 60


def _evaluate_samplers(scenario):
    surprise = SurpriseWeight(scenario.train_data.x, scenario.train_data.y)
    samplers = {
        "uniform": UniformSeedSampler(),
        "op+margin": OperationalSeedSampler(profile=scenario.profile, weight_function=margin_weight),
        "op+entropy": OperationalSeedSampler(profile=scenario.profile, weight_function=entropy_weight),
        "op+loss": OperationalSeedSampler(profile=scenario.profile, weight_function=loss_weight),
        "op+gradient-norm": OperationalSeedSampler(
            profile=scenario.profile, weight_function=gradient_norm_weight
        ),
        "op+surprise": OperationalSeedSampler(profile=scenario.profile, weight_function=surprise),
    }
    probe = PGD(epsilon=0.1, num_steps=8)
    mean_density = float(scenario.profile.density(scenario.operational_data.x).mean())

    rows = []
    for name, sampler in samplers.items():
        selection = sampler.select(scenario.operational_data, scenario.model, NUM_SEEDS, rng=7)
        attack = probe.run(scenario.model, selection.x, selection.y, rng=7)
        density = scenario.profile.density(selection.x) / max(mean_density, 1e-12)
        rows.append(
            {
                "sampler": name,
                "attackable-fraction": round(float(attack.success_rate), 3),
                "mean-op-density": round(float(density.mean()), 3),
                "product-score": round(float(attack.success_rate * density.mean()), 3),
            }
        )
    return rows


def test_e6_seed_sampling_strategies(benchmark, clusters_scenario):
    rows = single_run(benchmark, _evaluate_samplers, clusters_scenario)
    print()
    print(format_table(rows, "E6: seed quality by sampling strategy"))
    uniform = next(r for r in rows if r["sampler"] == "uniform")
    margin = next(r for r in rows if r["sampler"] == "op+margin")
    # weight-based sampling must select more attackable seeds than uniform
    assert margin["attackable-fraction"] >= uniform["attackable-fraction"]
