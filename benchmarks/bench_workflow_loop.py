"""E1 — End-to-end run of the five-step workflow of Figure 1.

Shows the loop operating as designed: learn/synthesise the operational
dataset, sample seeds, fuzz for operational AEs, retrain, re-assess delivered
reliability, and stop when the pmi target (or the iteration cap) is reached.
"""

from __future__ import annotations

from conftest import single_run

from repro.core import OperationalTestingLoop, WorkflowConfig
from repro.evaluation import campaign_to_rows, format_table
from repro.fuzzing import FuzzerConfig
from repro.reliability import StoppingRule
from repro.retraining import RetrainingConfig


def _run_loop(scenario):
    loop = OperationalTestingLoop(
        profile=scenario.profile,
        train_data=scenario.train_data,
        partition=scenario.partition,
        naturalness=scenario.naturalness,
        fuzzer_config=FuzzerConfig(epsilon=0.1, queries_per_seed=20),
        retraining_config=RetrainingConfig(epochs=5),
        stopping_rule=StoppingRule(target_pmi=0.03, confidence=0.85, max_iterations=4),
        workflow_config=WorkflowConfig(
            test_budget_per_iteration=500,
            seeds_per_iteration=25,
        ),
        rng=2021,
    )
    return loop.run(scenario.model, scenario.operational_data)


def test_e1_workflow_loop_converges(benchmark, clusters_scenario):
    final_model, report = single_run(benchmark, _run_loop, clusters_scenario)
    print()
    print(format_table(campaign_to_rows(report), "E1: five-step loop per-iteration summary"))
    assert report.num_iterations >= 1
    assert report.total_test_cases > 0
    # retraining on operational AEs must not degrade delivered reliability
    assert report.final_pmi <= report.iterations[0].pmi_before + 0.05
    # the improved model still classifies operational data
    assert final_model.predict(clusters_scenario.operational_data.x[:5]).shape == (5,)
