"""E2 — Operational-AE detection efficiency under equal test-case budgets.

Regenerates the paper's central comparison (Section I/IV): given the same
number of test cases, the proposed OP-guided method should find more
*operational* AEs than (a) a strong attack on uniformly chosen balanced seeds,
(b) unguided random fuzzing, and (c) pure operational testing — while the
attack baseline finds many more *total* (mostly irrelevant) AEs.
"""

from __future__ import annotations

import numpy as np
from conftest import single_run

from repro.core import (
    AttackOnUniformSeeds,
    MethodComparison,
    OperationalAECriterion,
    OperationalAEDetection,
    OperationalTestingBaseline,
    RandomFuzzBaseline,
)
from repro.evaluation import format_table


def _build_methods(scenario):
    return [
        OperationalAEDetection(profile=scenario.profile, naturalness=scenario.naturalness),
        AttackOnUniformSeeds(
            profile=scenario.profile,
            naturalness=scenario.naturalness,
            seed_pool=scenario.train_data,
        ),
        RandomFuzzBaseline(
            profile=scenario.profile,
            naturalness=scenario.naturalness,
            seed_pool=scenario.train_data,
        ),
        OperationalTestingBaseline(
            profile=scenario.profile, naturalness=scenario.naturalness
        ),
    ]


def _run_comparison(scenario, budgets, repeats, rng):
    comparison = MethodComparison(
        _build_methods(scenario), OperationalAECriterion(min_naturalness=0.5, min_op_density=0.5)
    )
    return comparison.run(scenario.model, scenario.operational_data, budgets, repeats=repeats, rng=rng)


def test_e2_detection_efficiency_clusters(benchmark, clusters_scenario):
    report = single_run(
        benchmark, _run_comparison, clusters_scenario, budgets=[300, 600], repeats=2, rng=1
    )
    print()
    print(format_table(report.as_rows(), "E2 (gaussian-clusters): operational AEs per budget"))
    proposed = [s for s in report.scores if s.method == "operational-ae-detection"]
    pgd = [s for s in report.scores if s.method == "pgd-uniform-seeds"]
    operational_testing = [s for s in report.scores if s.method == "operational-testing"]
    # the paper's qualitative claims, at matched budgets:
    # (1) the proposed method finds more operational AEs than the OP-ignorant attack,
    assert sum(s.operational_aes for s in proposed) >= sum(s.operational_aes for s in pgd)
    # (2) its AEs are more natural than the attack's,
    assert np.mean([s.mean_naturalness for s in proposed]) >= np.mean(
        [s.mean_naturalness for s in pgd]
    ) - 0.05
    # (3) and plain operational testing is the least efficient detector per test case.
    assert np.mean([s.operational_yield for s in proposed]) >= np.mean(
        [s.operational_yield for s in operational_testing]
    )


def test_e2_detection_efficiency_glyphs(benchmark, small_glyph_scenario):
    report = single_run(
        benchmark, _run_comparison, small_glyph_scenario, budgets=[400], repeats=1, rng=2
    )
    print()
    print(format_table(report.as_rows(), "E2 (glyph-digits): operational AEs per budget"))
    rows = report.as_rows()
    assert rows, "comparison produced no scores"
