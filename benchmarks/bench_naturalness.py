"""E4 — Naturalness of detected AEs: operational AEs are natural, not vice versa.

Compares the naturalness-score distribution of AEs found by the proposed
method against those found by PGD on uniform seeds, substantiating the
paper's claim that operational AEs form a strict subset of natural AEs while
attack-generated AEs are frequently unnatural.
"""

from __future__ import annotations

import numpy as np
from conftest import single_run

from repro.core import AttackOnUniformSeeds, OperationalAEDetection
from repro.evaluation import format_table


def _naturalness_distributions(scenario, budget=600):
    proposed = OperationalAEDetection(
        profile=scenario.profile, naturalness=scenario.naturalness
    ).detect(scenario.model, scenario.operational_data, budget, rng=5)
    attack = AttackOnUniformSeeds(
        profile=scenario.profile,
        naturalness=scenario.naturalness,
        seed_pool=scenario.train_data,
    ).detect(scenario.model, scenario.operational_data, budget, rng=5)
    natural_scores = scenario.naturalness.score(scenario.operational_data.x[:200])

    def stats(values):
        if len(values) == 0:
            return {"mean": 0.0, "median": 0.0, "p10": 0.0}
        return {
            "mean": float(np.mean(values)),
            "median": float(np.median(values)),
            "p10": float(np.percentile(values, 10)),
        }

    rows = []
    for label, result in (("operational-ae-detection", proposed), ("pgd-uniform-seeds", attack)):
        scores = [ae.naturalness for ae in result.adversarial_examples if ae.naturalness is not None]
        rows.append({"source": label, "count": len(scores), **stats(scores)})
    rows.append({"source": "natural operational data", "count": 200, **stats(natural_scores)})
    return rows


def test_e4_naturalness_of_detected_aes(benchmark, clusters_scenario):
    rows = single_run(benchmark, _naturalness_distributions, clusters_scenario)
    print()
    print(format_table(rows, "E4: naturalness score distributions"))
    proposed = next(r for r in rows if r["source"] == "operational-ae-detection")
    pgd = next(r for r in rows if r["source"] == "pgd-uniform-seeds")
    if proposed["count"] and pgd["count"]:
        # the shape the paper predicts: fuzzer AEs are markedly more natural
        assert proposed["mean"] >= pgd["mean"] - 0.05
