"""Reproducible before→after snapshot of the fuzzing/attack hot paths.

Runs the same fixed-seed campaign through the sequential reference fuzzer
("before") and the batched population engine ("after"), plus the vectorised
black-box attacks, and — since the sharded engine landed — a per-worker
scaling section on a medium (glyph-digit) scenario, and writes
``BENCH_fuzzer.json`` at the repository root so the throughput trajectory is
tracked across PRs.

Usage::

    PYTHONPATH=src python benchmarks/bench_fuzzer_snapshot.py \
        [output.json] [--workers 1 2 4]

Deliberately small (tens of seconds end to end) so it can run in CI; the
wall-clock numbers are indicative (the scaling rows record ``cpu_count`` so
single-core CI runs read as what they are), while the model-call counts and
the sharded-vs-population equivalence fingerprints are exact and
machine-independent.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

# the snapshot is both executed directly and loaded via runpy (CI validates
# the committed file that way), and only the former puts benchmarks/ on the
# module search path
sys.path.insert(0, str(Path(__file__).resolve().parent))
from bench_faults import faults_section, validate_faults_section  # noqa: E402

from repro.attacks import BoundaryNudge, GaussianNoise, RandomFuzz
from repro.evaluation import make_clusters_scenario, make_glyph_scenario
from repro.fuzzing import FuzzerConfig, OperationalFuzzer
from repro.runtime import ExecutionPolicy

SEED = 2021
NUM_SEEDS = 40
BUDGET = 1200
QUERIES_PER_SEED = 30

#: Medium-scenario settings for the per-worker scaling section: image-like
#: inputs with KDE + autoencoder naturalness, so each physical call carries
#: real compute for the workers to shard.
SCALING_NUM_SEEDS = 32
SCALING_BUDGET = 700
SCALING_QUERIES_PER_SEED = 25
SCALING_BULK_ROWS = 4096
SCALING_BATCH_SIZE = 512


def _fuzz_once(scenario, execution: str) -> dict:
    config = FuzzerConfig(
        epsilon=0.12,
        queries_per_seed=QUERIES_PER_SEED,
        naturalness_threshold=0.3,
        execution=execution,
    )
    fuzzer = OperationalFuzzer(
        naturalness=scenario.naturalness,
        config=config,
        natural_pool=scenario.operational_data.x,
    )
    seeds = scenario.operational_data.x[:NUM_SEEDS]
    labels = scenario.operational_data.y[:NUM_SEEDS]
    start = time.perf_counter()
    campaign = fuzzer.fuzz(
        scenario.model, seeds, labels, budget=BUDGET, rng=SEED
    )
    elapsed = time.perf_counter() - start
    stats = fuzzer.last_query_stats
    return {
        "execution": execution,
        "wall_time_s": round(elapsed, 4),
        "queries": campaign.total_queries,
        "queries_per_s": round(campaign.total_queries / max(elapsed, 1e-9), 1),
        "model_calls": stats.model_calls + stats.gradient_calls,
        "naturalness_calls": stats.naturalness_calls,
        "detection_rate": round(campaign.detection_rate, 4),
        "aes_found": len(campaign.adversarial_examples),
    }


def _attacks_once(scenario) -> dict:
    x = scenario.operational_data.x[:64]
    y = scenario.operational_data.y[:64]
    out = {}
    for attack in (
        RandomFuzz(epsilon=0.1, num_trials=20),
        GaussianNoise(epsilon=0.1, num_trials=10),
        BoundaryNudge(epsilon=0.1),
    ):
        start = time.perf_counter()
        result = attack.run(scenario.model, x, y, rng=SEED)
        elapsed = time.perf_counter() - start
        out[attack.name] = {
            "wall_time_s": round(elapsed, 4),
            "queries": result.queries,
            "queries_per_s": round(result.queries / max(elapsed, 1e-9), 1),
            "success_rate": round(result.success_rate, 4),
        }
    return out


def _scaling_campaign(scenario, backend: str, num_workers: int) -> dict:
    config = FuzzerConfig(
        epsilon=0.1,
        queries_per_seed=SCALING_QUERIES_PER_SEED,
        naturalness_threshold=0.3,
        policy=ExecutionPolicy(
            backend=backend,
            num_workers=num_workers,
            batch_size=SCALING_BATCH_SIZE,
            cache=True,
        ),
    )
    fuzzer = OperationalFuzzer(
        naturalness=scenario.naturalness,
        config=config,
        natural_pool=scenario.operational_data.x,
    )
    seeds = scenario.operational_data.x[:SCALING_NUM_SEEDS]
    labels = scenario.operational_data.y[:SCALING_NUM_SEEDS]
    start = time.perf_counter()
    campaign = fuzzer.fuzz(scenario.model, seeds, labels, budget=SCALING_BUDGET, rng=SEED)
    elapsed = time.perf_counter() - start
    return {
        "wall_time_s": round(elapsed, 4),
        "queries": campaign.total_queries,
        "aes_found": len(campaign.adversarial_examples),
        "per_seed_queries": [r.queries for r in campaign.per_seed],
    }


def _scaling_bulk(scenario, num_workers: int) -> dict:
    """Sharded throughput on one big naturalness + predict_proba workload."""
    rng = np.random.default_rng(SEED)
    pool = scenario.operational_data.x
    picks = rng.integers(0, len(pool), size=SCALING_BULK_ROWS)
    bulk = np.clip(pool[picks] + rng.normal(0.0, 0.01, size=pool[picks].shape), 0.0, 1.0)
    with scenario.query_engine(
        policy=ExecutionPolicy(
            backend="sharded", num_workers=num_workers, batch_size=SCALING_BATCH_SIZE
        )
    ) as engine:
        # warm every worker outside the timed window: pools spawn (and
        # unpickle their replica) lazily at their first submit, so the
        # warm-up must span at least num_workers shards — one-time setup
        # cost is not the steady-state scaling this row tracks
        engine.predict(bulk[: SCALING_BATCH_SIZE * num_workers])
        start = time.perf_counter()
        naturalness = engine.score_naturalness(bulk)
        probs = engine.predict_proba(bulk)
        elapsed = time.perf_counter() - start
    return {
        "rows": int(SCALING_BULK_ROWS),
        "wall_time_s": round(elapsed, 4),
        "rows_per_s": round(2 * SCALING_BULK_ROWS / max(elapsed, 1e-9), 1),
        "checksum": round(float(naturalness.sum() + probs.sum()), 6),
    }


def _scaling_section(worker_counts) -> dict:
    """Per-worker scaling rows on the medium scenario.

    The population baseline is the single-process lock-step engine; every
    sharded row records whether its campaign reproduced the baseline
    bit-identically (detections and per-seed query counts) — wall-clock may
    move with worker count, results must not.

    Campaign wall-times are end-to-end: each campaign builds its own engine,
    so multi-worker rows include the one-time pool spawn + replica pickling
    a real campaign pays (the bulk rows, by contrast, measure steady-state
    throughput on pre-warmed workers).
    """
    scenario = make_glyph_scenario(
        num_samples=900, image_size=12, num_classes=10, epochs=10, rng=SEED
    )
    baseline = _scaling_campaign(scenario, "batched", 1)
    rows = []
    for workers in worker_counts:
        campaign = _scaling_campaign(scenario, "sharded", workers)
        rows.append(
            {
                "num_workers": int(workers),
                "campaign": {
                    key: value
                    for key, value in campaign.items()
                    if key != "per_seed_queries"
                },
                "bulk": _scaling_bulk(scenario, workers),
                "identical_to_population": (
                    campaign["aes_found"] == baseline["aes_found"]
                    and campaign["queries"] == baseline["queries"]
                    and campaign["per_seed_queries"] == baseline["per_seed_queries"]
                ),
                "campaign_speedup_vs_1worker": None,  # filled below
            }
        )
    if rows:
        # the baseline is the 1-worker row (fall back to the smallest worker
        # count benchmarked), regardless of the order --workers was given in
        baseline_row = min(rows, key=lambda row: (row["num_workers"] != 1, row["num_workers"]))
        reference = baseline_row["campaign"]["wall_time_s"]
        for row in rows:
            row["campaign_speedup_vs_1worker"] = round(
                reference / max(row["campaign"]["wall_time_s"], 1e-9), 2
            )
    baseline.pop("per_seed_queries")
    cpu_count = os.cpu_count()
    return {
        "scenario": "glyph-digits-medium",
        "cpu_count": cpu_count,
        "note": (
            "wall-time scaling requires idle cores; on a single-CPU host "
            "multi-worker rows measure IPC overhead, not parallelism — "
            "results stay bit-identical either way"
        )
        if cpu_count == 1
        else "results are bit-identical across worker counts; wall-time varies",
        "config": {
            "num_seeds": SCALING_NUM_SEEDS,
            "budget": SCALING_BUDGET,
            "queries_per_seed": SCALING_QUERIES_PER_SEED,
            "batch_size": SCALING_BATCH_SIZE,
            "bulk_rows": SCALING_BULK_ROWS,
        },
        "population_baseline": baseline,
        "workers": rows,
    }


def _validate_snapshot(path: Path) -> None:
    """Re-read the written snapshot: it must stay parseable and complete."""
    snapshot = json.loads(path.read_text())
    for key in ("benchmark", "config", "fuzzer", "attacks_batched", "scaling", "faults"):
        if key not in snapshot:
            raise AssertionError(f"snapshot is missing the {key!r} section")
    for row in snapshot["scaling"]["workers"]:
        if not row["identical_to_population"]:
            raise AssertionError(
                f"sharded campaign at num_workers={row['num_workers']} "
                "diverged from the population baseline"
            )
    validate_faults_section(snapshot["faults"])


def main(output: str = "BENCH_fuzzer.json", worker_counts=(1, 2, 4)) -> dict:
    scenario = make_clusters_scenario(rng=SEED)
    before = _fuzz_once(scenario, "sequential")
    after = _fuzz_once(scenario, "population")
    snapshot = {
        "benchmark": "fuzzer-engine-snapshot",
        "config": {
            "seed": SEED,
            "num_seeds": NUM_SEEDS,
            "budget": BUDGET,
            "queries_per_seed": QUERIES_PER_SEED,
        },
        "fuzzer": {
            "before_sequential": before,
            "after_population": after,
            "speedup_wall_time": round(
                before["wall_time_s"] / max(after["wall_time_s"], 1e-9), 2
            ),
            "model_call_reduction": round(
                before["model_calls"] / max(after["model_calls"], 1), 2
            ),
        },
        "attacks_batched": _attacks_once(scenario),
        "scaling": _scaling_section(worker_counts),
        "faults": faults_section(),
    }
    path = Path(output)
    path.write_text(json.dumps(snapshot, indent=2) + "\n")
    _validate_snapshot(path)
    print(json.dumps(snapshot, indent=2))
    print(f"\nwrote {path.resolve()}")
    return snapshot


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("output", nargs="?", default="BENCH_fuzzer.json")
    parser.add_argument(
        "--workers",
        nargs="+",
        type=int,
        default=[1, 2, 4],
        help="worker counts for the sharded scaling rows",
    )
    args = parser.parse_args()
    main(args.output, worker_counts=args.workers)
