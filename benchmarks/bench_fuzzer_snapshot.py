"""Reproducible before→after snapshot of the fuzzing/attack hot paths.

Runs the same fixed-seed campaign through the sequential reference fuzzer
("before") and the batched population engine ("after"), plus the vectorised
black-box attacks, and — since the sharded engine landed — a per-worker,
per-transport scaling section on a medium (glyph-digit) scenario plus an
IPC-overhead probe (a no-op model, so the timing isolates shard transport
cost), a ``faults`` section (chaos overhead and bit-identity under worker
kills, see ``bench_faults.py``), a ``telemetry_overhead`` section
(observability costs <3% and never perturbs results, see
``bench_telemetry.py``) and a ``lint_performance`` section (a warm
incremental ``repro lint`` beats cold by >=3x with identical findings, see
``bench_lint.py``), and writes ``BENCH_fuzzer.json`` at the repository
root so the throughput trajectory is tracked across PRs.

Usage::

    PYTHONPATH=src python benchmarks/bench_fuzzer_snapshot.py \
        [output.json] [--workers 1 2 4]

Deliberately small (tens of seconds end to end) so it can run in CI; the
wall-clock numbers are indicative (the scaling rows record ``cpu_count`` so
single-core CI runs read as what they are), while the model-call counts and
the sharded-vs-population equivalence fingerprints are exact and
machine-independent.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

# the snapshot is both executed directly and loaded via runpy (CI validates
# the committed file that way), and only the former puts benchmarks/ on the
# module search path
sys.path.insert(0, str(Path(__file__).resolve().parent))
from bench_faults import faults_section, validate_faults_section  # noqa: E402
from bench_lint import (  # noqa: E402
    lint_performance_section,
    validate_lint_performance_section,
)
from bench_telemetry import telemetry_section, validate_telemetry_section  # noqa: E402

from repro.attacks import BoundaryNudge, GaussianNoise, RandomFuzz
from repro.engine.parallel import ShardedQueryEngine
from repro.evaluation import make_clusters_scenario, make_glyph_scenario
from repro.fuzzing import FuzzerConfig, OperationalFuzzer
from repro.runtime import ExecutionPolicy

SEED = 2021
NUM_SEEDS = 40
BUDGET = 1200
QUERIES_PER_SEED = 30

#: Medium-scenario settings for the per-worker scaling section: image-like
#: inputs with KDE + autoencoder naturalness, so each physical call carries
#: real compute for the workers to shard.
SCALING_NUM_SEEDS = 32
SCALING_BUDGET = 700
SCALING_QUERIES_PER_SEED = 25
SCALING_BULK_ROWS = 2048  # halved when the bulk list went per-transport
SCALING_BATCH_SIZE = 512

#: Transports benchmarked per multi-worker row.  A single worker always runs
#: in-process (the engine shortcuts the pool), so worker_count 1 gets one row.
SCALING_TRANSPORTS = ("pickle", "shm", "threads")

#: IPC-probe settings: a no-op model makes the shard round-trip cost the
#: whole measurement, and 4 MiB request blocks are the regime the zero-copy
#: transport exists for.
PROBE_ROWS = 8192
PROBE_FEATURES = 256
PROBE_BATCH_SIZE = 2048
PROBE_WORKERS = 2
PROBE_REPEATS = 5


class _NoOpProbeModel:
    """Picklable classifier whose calls cost (almost) nothing.

    With compute removed, the wall-time of a sharded dispatch is the shard
    transport itself: serialise/copy the request block out, move the response
    back, plus pool bookkeeping.  That is exactly the quantity the pickle vs
    shm probe compares.
    """

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.zeros(len(x), dtype=np.int64)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        probs = np.empty((len(x), 2), dtype=np.float64)
        probs[:, 0] = 0.5
        probs[:, 1] = 0.5
        return probs

    def loss_input_gradient(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return np.zeros_like(x)


def _fuzz_once(scenario, execution: str) -> dict:
    config = FuzzerConfig(
        epsilon=0.12,
        queries_per_seed=QUERIES_PER_SEED,
        naturalness_threshold=0.3,
        execution=execution,
    )
    fuzzer = OperationalFuzzer(
        naturalness=scenario.naturalness,
        config=config,
        natural_pool=scenario.operational_data.x,
    )
    seeds = scenario.operational_data.x[:NUM_SEEDS]
    labels = scenario.operational_data.y[:NUM_SEEDS]
    start = time.perf_counter()
    campaign = fuzzer.fuzz(
        scenario.model, seeds, labels, budget=BUDGET, rng=SEED
    )
    elapsed = time.perf_counter() - start
    stats = fuzzer.last_query_stats
    return {
        "execution": execution,
        "wall_time_s": round(elapsed, 4),
        "queries": campaign.total_queries,
        "queries_per_s": round(campaign.total_queries / max(elapsed, 1e-9), 1),
        "model_calls": stats.model_calls + stats.gradient_calls,
        "naturalness_calls": stats.naturalness_calls,
        "detection_rate": round(campaign.detection_rate, 4),
        "aes_found": len(campaign.adversarial_examples),
    }


def _attacks_once(scenario) -> dict:
    x = scenario.operational_data.x[:64]
    y = scenario.operational_data.y[:64]
    out = {}
    for attack in (
        RandomFuzz(epsilon=0.1, num_trials=20),
        GaussianNoise(epsilon=0.1, num_trials=10),
        BoundaryNudge(epsilon=0.1),
    ):
        start = time.perf_counter()
        result = attack.run(scenario.model, x, y, rng=SEED)
        elapsed = time.perf_counter() - start
        out[attack.name] = {
            "wall_time_s": round(elapsed, 4),
            "queries": result.queries,
            "queries_per_s": round(result.queries / max(elapsed, 1e-9), 1),
            "success_rate": round(result.success_rate, 4),
        }
    return out


def _scaling_campaign(
    scenario, backend: str, num_workers: int, transport: str = "auto"
) -> dict:
    config = FuzzerConfig(
        epsilon=0.1,
        queries_per_seed=SCALING_QUERIES_PER_SEED,
        naturalness_threshold=0.3,
        policy=ExecutionPolicy(
            backend=backend,
            num_workers=num_workers,
            transport=transport,
            batch_size=SCALING_BATCH_SIZE,
            cache=True,
        ),
    )
    fuzzer = OperationalFuzzer(
        naturalness=scenario.naturalness,
        config=config,
        natural_pool=scenario.operational_data.x,
    )
    seeds = scenario.operational_data.x[:SCALING_NUM_SEEDS]
    labels = scenario.operational_data.y[:SCALING_NUM_SEEDS]
    start = time.perf_counter()
    campaign = fuzzer.fuzz(scenario.model, seeds, labels, budget=SCALING_BUDGET, rng=SEED)
    elapsed = time.perf_counter() - start
    return {
        "wall_time_s": round(elapsed, 4),
        "queries": campaign.total_queries,
        "aes_found": len(campaign.adversarial_examples),
        "per_seed_queries": [r.queries for r in campaign.per_seed],
    }


def _scaling_bulk(scenario, num_workers: int, transport: str = "auto") -> dict:
    """Sharded throughput on one big naturalness + predict_proba workload."""
    rng = np.random.default_rng(SEED)
    pool = scenario.operational_data.x
    picks = rng.integers(0, len(pool), size=SCALING_BULK_ROWS)
    bulk = np.clip(pool[picks] + rng.normal(0.0, 0.01, size=pool[picks].shape), 0.0, 1.0)
    with scenario.query_engine(
        policy=ExecutionPolicy(
            backend="sharded",
            num_workers=num_workers,
            transport=transport,
            batch_size=SCALING_BATCH_SIZE,
        )
    ) as engine:
        # warm every worker outside the timed window: pools spawn (and
        # unpickle their replica) lazily at their first submit, so the
        # warm-up must span at least num_workers shards — one-time setup
        # cost is not the steady-state scaling this row tracks
        engine.predict(bulk[: SCALING_BATCH_SIZE * num_workers])
        start = time.perf_counter()
        naturalness = engine.score_naturalness(bulk)
        probs = engine.predict_proba(bulk)
        elapsed = time.perf_counter() - start
    return {
        "rows": int(SCALING_BULK_ROWS),
        "wall_time_s": round(elapsed, 4),
        "rows_per_s": round(2 * SCALING_BULK_ROWS / max(elapsed, 1e-9), 1),
        "checksum": round(float(naturalness.sum() + probs.sum()), 6),
    }


def _scaling_section(worker_counts) -> dict:
    """Per-worker, per-transport scaling rows on the medium scenario.

    The population baseline is the single-process lock-step engine; every
    sharded row records whether its campaign reproduced the baseline
    bit-identically (detections and per-seed query counts) — wall-clock may
    move with worker count and transport, results must not.

    Campaign wall-times are end-to-end: each campaign builds its own engine,
    so multi-worker rows include the one-time pool spawn + replica pickling
    a real campaign pays (the bulk rows, by contrast, measure steady-state
    throughput on pre-warmed workers).  A single worker always runs
    in-process — the engine shortcuts the pool — so worker count 1 gets one
    row; multi-worker counts get one campaign row per transport.
    """
    scenario = make_glyph_scenario(
        num_samples=900, image_size=12, num_classes=10, epochs=10, rng=SEED
    )
    baseline = _scaling_campaign(scenario, "batched", 1)
    rows = []
    for workers in worker_counts:
        transports = ("in-process",) if workers == 1 else SCALING_TRANSPORTS
        for transport in transports:
            campaign = _scaling_campaign(
                scenario,
                "sharded",
                workers,
                transport="auto" if transport == "in-process" else transport,
            )
            rows.append(
                {
                    "num_workers": int(workers),
                    "transport": transport,
                    "campaign": {
                        key: value
                        for key, value in campaign.items()
                        if key != "per_seed_queries"
                    },
                    "identical_to_population": (
                        campaign["aes_found"] == baseline["aes_found"]
                        and campaign["queries"] == baseline["queries"]
                        and campaign["per_seed_queries"] == baseline["per_seed_queries"]
                    ),
                    "campaign_speedup_vs_1worker": None,  # filled below
                }
            )
    if rows:
        # the baseline is the 1-worker row (fall back to the smallest worker
        # count benchmarked), regardless of the order --workers was given in
        baseline_row = min(rows, key=lambda row: (row["num_workers"] != 1, row["num_workers"]))
        reference = baseline_row["campaign"]["wall_time_s"]
        for row in rows:
            row["campaign_speedup_vs_1worker"] = round(
                reference / max(row["campaign"]["wall_time_s"], 1e-9), 2
            )
    # steady-state bulk throughput: pickle vs shm per multi-worker count
    # (threads excluded to bound runtime; the campaign rows cover it)
    bulk_rows = []
    for workers in worker_counts:
        transports = ("in-process",) if workers == 1 else ("pickle", "shm")
        for transport in transports:
            bulk = _scaling_bulk(
                scenario,
                workers,
                transport="auto" if transport == "in-process" else transport,
            )
            bulk_rows.append(
                {"num_workers": int(workers), "transport": transport, **bulk}
            )
    baseline.pop("per_seed_queries")
    cpu_count = os.cpu_count()
    return {
        "scenario": "glyph-digits-medium",
        "cpu_count": cpu_count,
        "note": (
            "wall-time scaling requires idle cores; on a single-CPU host "
            "multi-worker rows measure IPC overhead, not parallelism — "
            "results stay bit-identical either way"
        )
        if cpu_count == 1
        else "results are bit-identical across worker counts and transports; "
        "wall-time varies",
        "config": {
            "num_seeds": SCALING_NUM_SEEDS,
            "budget": SCALING_BUDGET,
            "queries_per_seed": SCALING_QUERIES_PER_SEED,
            "batch_size": SCALING_BATCH_SIZE,
            "bulk_rows": SCALING_BULK_ROWS,
        },
        "population_baseline": baseline,
        "workers": rows,
        "bulk": bulk_rows,
    }


def _ipc_overhead_section() -> dict:
    """Per-shard transport overhead, isolated with a no-op model.

    Each dispatch moves ``PROBE_ROWS`` float64 rows of ``PROBE_FEATURES``
    features through the worker pool in ``PROBE_BATCH_SIZE``-row shards
    (4 MiB request blocks).  The model does no work, so the best-of-N
    wall-time is the transport itself: under pickle every block is
    serialised and squeezed through the pool's pipe; under shm the block is
    memcpy'd into a preallocated ring and only a ~100-byte envelope crosses
    the pipe.  This is why the shm advantage holds even on a single-core
    host, where parallel-speedup numbers are meaningless.
    """
    rng = np.random.default_rng(SEED)
    x = rng.random((PROBE_ROWS, PROBE_FEATURES), dtype=np.float64)
    num_shards = -(-PROBE_ROWS // PROBE_BATCH_SIZE)
    rows = []
    for transport in ("pickle", "shm"):
        engine = ShardedQueryEngine(
            _NoOpProbeModel(),
            num_workers=PROBE_WORKERS,
            batch_size=PROBE_BATCH_SIZE,
            transport=transport,
        )
        try:
            engine.predict_proba(x)  # spawn pool + allocate rings untimed
            best = min(
                _timed(engine.predict_proba, x) for _ in range(PROBE_REPEATS)
            )
        finally:
            engine.close()
        rows.append(
            {
                "transport": transport,
                "best_dispatch_s": round(best, 5),
                "per_shard_ms": round(best / num_shards * 1e3, 3),
            }
        )
    by_transport = {row["transport"]: row for row in rows}
    return {
        "rows": int(PROBE_ROWS),
        "features": int(PROBE_FEATURES),
        "batch_size": int(PROBE_BATCH_SIZE),
        "num_workers": int(PROBE_WORKERS),
        "num_shards": int(num_shards),
        "block_bytes": int(PROBE_BATCH_SIZE * PROBE_FEATURES * 8),
        "repeats": int(PROBE_REPEATS),
        "probe": rows,
        "shm_vs_pickle": round(
            by_transport["shm"]["per_shard_ms"]
            / max(by_transport["pickle"]["per_shard_ms"], 1e-9),
            3,
        ),
    }


def _timed(func, *args) -> float:
    start = time.perf_counter()
    func(*args)
    return time.perf_counter() - start


def _validate_snapshot(path: Path) -> None:
    """Re-read the written snapshot: it must stay parseable and complete.

    Every per-transport scaling row must have reproduced the population
    baseline bit-identically, the shm rows must be present and parseable,
    and the IPC probe must show shm moving shards cheaper than pickle —
    that last property is transport overhead, not parallelism, so it holds
    on a single-core CI host too.
    """
    snapshot = json.loads(path.read_text())
    for key in (
        "benchmark",
        "config",
        "fuzzer",
        "attacks_batched",
        "scaling",
        "ipc_overhead",
        "faults",
        "telemetry_overhead",
        "lint_performance",
    ):
        if key not in snapshot:
            raise AssertionError(f"snapshot is missing the {key!r} section")
    transports_seen = set()
    for row in snapshot["scaling"]["workers"]:
        transports_seen.add(row["transport"])
        if not row["identical_to_population"]:
            raise AssertionError(
                f"sharded campaign at num_workers={row['num_workers']} "
                f"transport={row['transport']} diverged from the population "
                "baseline"
            )
    if any(int(row["num_workers"]) > 1 for row in snapshot["scaling"]["workers"]):
        missing = set(SCALING_TRANSPORTS) - transports_seen
        if missing:
            raise AssertionError(
                f"scaling section is missing transport rows for {sorted(missing)}"
            )
    probe = {row["transport"]: row for row in snapshot["ipc_overhead"]["probe"]}
    if probe["shm"]["per_shard_ms"] >= probe["pickle"]["per_shard_ms"]:
        raise AssertionError(
            "shm transport did not beat pickle on per-shard IPC overhead "
            f"({probe['shm']['per_shard_ms']}ms >= "
            f"{probe['pickle']['per_shard_ms']}ms)"
        )
    validate_faults_section(snapshot["faults"])
    validate_telemetry_section(snapshot["telemetry_overhead"])
    validate_lint_performance_section(snapshot["lint_performance"])


def main(output: str = "BENCH_fuzzer.json", worker_counts=(1, 2, 4)) -> dict:
    scenario = make_clusters_scenario(rng=SEED)
    before = _fuzz_once(scenario, "sequential")
    after = _fuzz_once(scenario, "population")
    snapshot = {
        "benchmark": "fuzzer-engine-snapshot",
        "config": {
            "seed": SEED,
            "num_seeds": NUM_SEEDS,
            "budget": BUDGET,
            "queries_per_seed": QUERIES_PER_SEED,
        },
        "fuzzer": {
            "before_sequential": before,
            "after_population": after,
            "speedup_wall_time": round(
                before["wall_time_s"] / max(after["wall_time_s"], 1e-9), 2
            ),
            "model_call_reduction": round(
                before["model_calls"] / max(after["model_calls"], 1), 2
            ),
        },
        "attacks_batched": _attacks_once(scenario),
        "scaling": _scaling_section(worker_counts),
        "ipc_overhead": _ipc_overhead_section(),
        "faults": faults_section(),
        "telemetry_overhead": telemetry_section(),
        "lint_performance": lint_performance_section(),
    }
    path = Path(output)
    path.write_text(json.dumps(snapshot, indent=2) + "\n")
    _validate_snapshot(path)
    print(json.dumps(snapshot, indent=2))
    print(f"\nwrote {path.resolve()}")
    return snapshot


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("output", nargs="?", default="BENCH_fuzzer.json")
    parser.add_argument(
        "--workers",
        nargs="+",
        type=int,
        default=[1, 2, 4],
        help="worker counts for the sharded scaling rows",
    )
    args = parser.parse_args()
    main(args.output, worker_counts=args.workers)
