"""Reproducible before→after snapshot of the fuzzing/attack hot paths.

Runs the same fixed-seed campaign through the sequential reference fuzzer
("before") and the batched population engine ("after"), plus the vectorised
black-box attacks, and writes ``BENCH_fuzzer.json`` at the repository root so
the throughput trajectory is tracked across PRs.

Usage::

    PYTHONPATH=src python benchmarks/bench_fuzzer_snapshot.py [output.json]

Deliberately small (a few seconds end to end) so it can run in CI; the
numbers are wall-clock and therefore indicative, while the model-call counts
are exact and machine-independent.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.attacks import BoundaryNudge, GaussianNoise, RandomFuzz
from repro.evaluation import make_clusters_scenario
from repro.fuzzing import FuzzerConfig, OperationalFuzzer

SEED = 2021
NUM_SEEDS = 40
BUDGET = 1200
QUERIES_PER_SEED = 30


def _fuzz_once(scenario, execution: str) -> dict:
    config = FuzzerConfig(
        epsilon=0.12,
        queries_per_seed=QUERIES_PER_SEED,
        naturalness_threshold=0.3,
        execution=execution,
    )
    fuzzer = OperationalFuzzer(
        naturalness=scenario.naturalness,
        config=config,
        natural_pool=scenario.operational_data.x,
    )
    seeds = scenario.operational_data.x[:NUM_SEEDS]
    labels = scenario.operational_data.y[:NUM_SEEDS]
    start = time.perf_counter()
    campaign = fuzzer.fuzz(
        scenario.model, seeds, labels, budget=BUDGET, rng=SEED
    )
    elapsed = time.perf_counter() - start
    stats = fuzzer.last_query_stats
    return {
        "execution": execution,
        "wall_time_s": round(elapsed, 4),
        "queries": campaign.total_queries,
        "queries_per_s": round(campaign.total_queries / max(elapsed, 1e-9), 1),
        "model_calls": stats.model_calls + stats.gradient_calls,
        "naturalness_calls": stats.naturalness_calls,
        "detection_rate": round(campaign.detection_rate, 4),
        "aes_found": len(campaign.adversarial_examples),
    }


def _attacks_once(scenario) -> dict:
    x = scenario.operational_data.x[:64]
    y = scenario.operational_data.y[:64]
    out = {}
    for attack in (
        RandomFuzz(epsilon=0.1, num_trials=20),
        GaussianNoise(epsilon=0.1, num_trials=10),
        BoundaryNudge(epsilon=0.1),
    ):
        start = time.perf_counter()
        result = attack.run(scenario.model, x, y, rng=SEED)
        elapsed = time.perf_counter() - start
        out[attack.name] = {
            "wall_time_s": round(elapsed, 4),
            "queries": result.queries,
            "queries_per_s": round(result.queries / max(elapsed, 1e-9), 1),
            "success_rate": round(result.success_rate, 4),
        }
    return out


def main(output: str = "BENCH_fuzzer.json") -> dict:
    scenario = make_clusters_scenario(rng=SEED)
    before = _fuzz_once(scenario, "sequential")
    after = _fuzz_once(scenario, "population")
    snapshot = {
        "benchmark": "fuzzer-engine-snapshot",
        "config": {
            "seed": SEED,
            "num_seeds": NUM_SEEDS,
            "budget": BUDGET,
            "queries_per_seed": QUERIES_PER_SEED,
        },
        "fuzzer": {
            "before_sequential": before,
            "after_population": after,
            "speedup_wall_time": round(
                before["wall_time_s"] / max(after["wall_time_s"], 1e-9), 2
            ),
            "model_call_reduction": round(
                before["model_calls"] / max(after["model_calls"], 1), 2
            ),
        },
        "attacks_batched": _attacks_once(scenario),
    }
    path = Path(output)
    path.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(json.dumps(snapshot, indent=2))
    print(f"\nwrote {path.resolve()}")
    return snapshot


if __name__ == "__main__":
    main(*sys.argv[1:2])
