"""E3 — Test cases needed to reach a delivered-reliability target.

The paper's success criterion (Section IV) is "requiring significantly less
amount of test cases to achieve the same level of reliability".  For each
method we spend an increasing budget on detection, retrain on whatever was
found, and record the pmi of the retrained model; the series shows how much
testing each method needs before the reliability target is met.
"""

from __future__ import annotations

import numpy as np
from conftest import single_run

from repro.core import (
    AttackOnUniformSeeds,
    OperationalAEDetection,
    RandomFuzzBaseline,
)
from repro.evaluation import format_table
from repro.reliability import ReliabilityAssessor
from repro.retraining import OperationalRetrainer, RetrainingConfig


BUDGETS = [200, 400, 800]
TARGET_PMI = 0.03


def _methods(scenario):
    return [
        OperationalAEDetection(profile=scenario.profile, naturalness=scenario.naturalness),
        AttackOnUniformSeeds(
            profile=scenario.profile,
            naturalness=scenario.naturalness,
            seed_pool=scenario.train_data,
        ),
        RandomFuzzBaseline(
            profile=scenario.profile,
            naturalness=scenario.naturalness,
            seed_pool=scenario.train_data,
        ),
    ]


def _budget_to_reliability(scenario):
    assessor = ReliabilityAssessor(
        partition=scenario.partition, profile=scenario.profile, confidence=0.85, rng=0
    )
    retrainer = OperationalRetrainer(
        config=RetrainingConfig(epochs=5), profile=scenario.profile, rng=0
    )
    baseline_estimate = assessor.assess(scenario.model, scenario.operational_data, rng=0)
    rows = []
    for method in _methods(scenario):
        for budget in BUDGETS:
            detection = method.detect(scenario.model, scenario.operational_data, budget, rng=3)
            retrained = retrainer.retrain(
                scenario.model, scenario.train_data, detection.adversarial_examples
            )
            estimate = assessor.assess(retrained, scenario.operational_data, rng=0)
            rows.append(
                {
                    "method": method.name,
                    "budget": budget,
                    "AEs-used": detection.num_detected,
                    "pmi-before": round(baseline_estimate.pmi, 4),
                    "pmi-after": round(estimate.pmi, 4),
                    "target-met": estimate.pmi <= TARGET_PMI,
                }
            )
    return rows, baseline_estimate


def test_e3_budget_to_reliability(benchmark, clusters_scenario):
    rows, baseline = single_run(benchmark, _budget_to_reliability, clusters_scenario)
    print()
    print(format_table(rows, f"E3: pmi after retraining (baseline pmi={baseline.pmi:.4f})"))
    proposed = [r for r in rows if r["method"] == "operational-ae-detection"]
    # retraining guided by operational AEs must not make reliability worse, and
    # at the largest budget it should improve (or at least match) the baseline pmi
    final = proposed[-1]["pmi-after"]
    assert final <= baseline.pmi + 0.02
    # the proposed method's reliability after retraining should be at least as
    # good as the unguided random-fuzz baseline's at the same budget
    fuzz = [r for r in rows if r["method"] == "random-fuzz-uniform-seeds"]
    assert proposed[-1]["pmi-after"] <= fuzz[-1]["pmi-after"] + 0.02
