"""Chaos benchmark: what supervised fault tolerance costs, and what it saves.

Runs one fixed-seed fuzzing campaign on the sharded two-worker backend three
ways — clean, with one worker repeatedly SIGKILLed mid-campaign, and with
every worker killed at first contact (forcing degradation to in-process
execution) — and records wall time, the fault counters
(``shard_retries``/``worker_respawns``/``degraded_shards``) and whether each
faulted campaign reproduced the clean one bit-identically (it must: that is
the supervision contract, and the validator refuses the snapshot otherwise).

The headline number is ``overhead_ratio_killed``: the wall-time cost of
losing (and respawning) a worker relative to the clean supervised run.  The
section is embedded in ``BENCH_fuzzer.json`` by
``benchmarks/bench_fuzzer_snapshot.py``; standalone use::

    PYTHONPATH=src python benchmarks/bench_faults.py [output.json]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.evaluation import make_clusters_scenario
from repro.faults import FaultPlan, RetryPolicy
from repro.fuzzing import FuzzerConfig, OperationalFuzzer
from repro.runtime import ExecutionPolicy

SEED = 2021
#: Bigger than the fuzzer section's campaign on purpose: a worker respawn is
#: a fixed ~50ms cost (pool spawn + replica unpickle), so the overhead ratio
#: only reads as steady-state supervision cost once the campaign is long
#: enough to amortise it.
NUM_SEEDS = 48
BUDGET = 3600
QUERIES_PER_SEED = 60
NUM_WORKERS = 2
#: Small enough that every population dispatch spans several shards, so both
#: worker slots receive work and the injected kills actually fire.
BATCH_SIZE = 16

#: Zero backoff keeps the wall-time rows about supervision, not sleeping.
_RETRY = RetryPolicy(backoff_base_s=0.0)
_NO_RETRY = RetryPolicy(max_attempts=1, max_respawns=0, backoff_base_s=0.0)

#: Worker 1 dies (a real SIGKILL) every time it has serviced two shards —
#: respawned slots get a fresh countdown, so the fault recurs all campaign.
_KILL_ONE = FaultPlan(kills=((1, 2),))
#: Every slot dies at first contact; with no respawn budget the engine must
#: degrade to in-process execution.
_KILL_ALL = FaultPlan(kills=tuple((worker, 0) for worker in range(NUM_WORKERS)))


def _campaign(scenario, retry=None, faults=None) -> dict:
    config = FuzzerConfig(
        epsilon=0.12,
        queries_per_seed=QUERIES_PER_SEED,
        naturalness_threshold=0.3,
        execution="population",
        policy=ExecutionPolicy(
            backend="sharded",
            num_workers=NUM_WORKERS,
            batch_size=BATCH_SIZE,
            cache=True,
            retry=retry,
            faults=faults,
        ),
    )
    fuzzer = OperationalFuzzer(
        naturalness=scenario.naturalness,
        config=config,
        natural_pool=scenario.operational_data.x,
    )
    seeds = scenario.operational_data.x[:NUM_SEEDS]
    labels = scenario.operational_data.y[:NUM_SEEDS]
    start = time.perf_counter()
    campaign = fuzzer.fuzz(scenario.model, seeds, labels, budget=BUDGET, rng=SEED)
    elapsed = time.perf_counter() - start
    stats = fuzzer.last_query_stats
    return {
        "wall_time_s": round(elapsed, 4),
        "queries": campaign.total_queries,
        "aes_found": len(campaign.adversarial_examples),
        "shard_retries": stats.shard_retries,
        "worker_respawns": stats.worker_respawns,
        "degraded_shards": stats.degraded_shards,
        "per_seed_queries": [r.queries for r in campaign.per_seed],
    }


def _identical(reference: dict, candidate: dict) -> bool:
    return (
        candidate["queries"] == reference["queries"]
        and candidate["aes_found"] == reference["aes_found"]
        and candidate["per_seed_queries"] == reference["per_seed_queries"]
    )


def faults_section() -> dict:
    """The ``faults`` section of ``BENCH_fuzzer.json``."""
    scenario = make_clusters_scenario(rng=SEED)
    clean = _campaign(scenario, retry=_RETRY)
    killed = _campaign(scenario, retry=_RETRY, faults=_KILL_ONE)
    degraded = _campaign(scenario, retry=_NO_RETRY, faults=_KILL_ALL)
    rows = {"clean": clean, "killed_worker": killed, "degraded": degraded}
    section = {
        "config": {
            "seed": SEED,
            "num_seeds": NUM_SEEDS,
            "budget": BUDGET,
            "queries_per_seed": QUERIES_PER_SEED,
            "num_workers": NUM_WORKERS,
            "batch_size": BATCH_SIZE,
            "kill_plan": _KILL_ONE.to_dict(),
            "retry": _RETRY.to_dict(),
        },
        "note": (
            "faulted campaigns must reproduce the clean run bit-identically "
            "(same queries, same detections); only wall time and the fault "
            "counters may differ"
        ),
    }
    for name, row in rows.items():
        row = dict(row)
        row["identical_to_clean"] = _identical(clean, row)
        row.pop("per_seed_queries")
        section[name] = row
    reference = max(clean["wall_time_s"], 1e-9)
    section["overhead_ratio_killed"] = round(
        killed["wall_time_s"] / reference, 2
    )
    section["overhead_ratio_degraded"] = round(
        degraded["wall_time_s"] / reference, 2
    )
    return section


def validate_faults_section(section: dict) -> None:
    """Refuse a snapshot whose faulted campaigns diverged or saw no faults."""
    for name in ("clean", "killed_worker", "degraded"):
        if not section[name]["identical_to_clean"]:
            raise AssertionError(
                f"faulted campaign {name!r} diverged from the clean run"
            )
    if section["killed_worker"]["worker_respawns"] < 1:
        raise AssertionError(
            "the killed-worker campaign never respawned a worker: the "
            "injected kills did not fire"
        )
    if section["degraded"]["degraded_shards"] < 1:
        raise AssertionError(
            "the kill-all campaign never degraded: the injected kills did "
            "not fire"
        )


def main(output: str | None = None) -> dict:
    section = faults_section()
    validate_faults_section(section)
    text = json.dumps(section, indent=2)
    print(text)
    if output:
        Path(output).write_text(text + "\n")
        print(f"\nwrote {Path(output).resolve()}")
    return section


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("output", nargs="?", default=None)
    args = parser.parse_args()
    main(args.output)
