"""P1 — Micro-benchmarks of the substrates (numpy NN, attacks, naturalness scoring).

These are conventional pytest-benchmark timings (multiple rounds) so the
throughput of the building blocks can be tracked across changes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import PGD
from repro.naturalness import DensityNaturalness
from repro.nn import Adam, build_mlp_classifier
from repro.op import GMMProfileEstimator


@pytest.fixture(scope="module")
def perf_model(clusters_scenario):
    return clusters_scenario.model


@pytest.fixture(scope="module")
def perf_batch(clusters_scenario):
    data = clusters_scenario.operational_data
    return data.x[:256], data.y[:256]


def test_p1_forward_pass_throughput(benchmark, perf_model, perf_batch):
    x, _ = perf_batch
    benchmark(perf_model.predict_proba, x)


def test_p1_input_gradient_throughput(benchmark, perf_model, perf_batch):
    x, y = perf_batch
    benchmark(perf_model.loss_input_gradient, x, y)


def test_p1_training_step_throughput(benchmark, clusters_scenario):
    train = clusters_scenario.train_data
    model = build_mlp_classifier(train.num_features, train.num_classes, hidden_sizes=(32, 16), rng=0)
    optimizer = Adam(learning_rate=0.005)

    def step():
        model.train_step_gradients(train.x[:128], train.y[:128])
        optimizer.step(model.layers)

    benchmark(step)


def test_p1_pgd_attack_throughput(benchmark, perf_model, perf_batch):
    x, y = perf_batch
    attack = PGD(epsilon=0.1, num_steps=5, early_stop=False)
    benchmark.pedantic(attack.run, args=(perf_model, x[:64], y[:64]), kwargs={"rng": 0}, rounds=3, iterations=1)


def test_p1_naturalness_scoring_throughput(benchmark, clusters_scenario, perf_batch):
    x, _ = perf_batch
    scorer = DensityNaturalness(rng=0).fit(clusters_scenario.train_data.x)
    benchmark(scorer.score, x[:128])


def test_p1_gmm_fit_throughput(benchmark, clusters_scenario):
    x = clusters_scenario.operational_data.x[:500]
    estimator = GMMProfileEstimator(num_components=4, max_iterations=50, num_restarts=1, rng=0)
    benchmark.pedantic(estimator.fit, args=(x,), rounds=3, iterations=1)
