"""E7 — Reliability growth across loop iterations; OP-aware vs OP-ignorant retraining (RQ4/RQ5).

Runs several iterations of the testing loop and records the pmi trajectory,
then compares the final delivered reliability of OP-aware retraining against a
Madry-style adversarial-training baseline that ignores both the detected
operational AEs and the OP.
"""

from __future__ import annotations

import numpy as np
from conftest import single_run

from repro.core import OperationalAEDetection, OperationalTestingLoop, WorkflowConfig
from repro.evaluation import campaign_to_rows, format_table
from repro.fuzzing import FuzzerConfig
from repro.reliability import ReliabilityAssessor, StoppingRule
from repro.retraining import OperationalRetrainer, RetrainingConfig, StandardAdversarialTrainer


def _growth_and_comparison(scenario):
    # -- reliability growth over loop iterations --------------------------- #
    loop = OperationalTestingLoop(
        profile=scenario.profile,
        train_data=scenario.train_data,
        partition=scenario.partition,
        naturalness=scenario.naturalness,
        fuzzer_config=FuzzerConfig(queries_per_seed=20),
        retraining_config=RetrainingConfig(epochs=4),
        stopping_rule=StoppingRule(target_pmi=0.005, confidence=0.85, max_iterations=3),
        workflow_config=WorkflowConfig(test_budget_per_iteration=400, seeds_per_iteration=20),
        rng=17,
    )
    _, campaign = loop.run(scenario.model, scenario.operational_data)

    # -- OP-aware vs OP-ignorant retraining at a fixed detection budget ----- #
    assessor = ReliabilityAssessor(
        partition=scenario.partition, profile=scenario.profile, confidence=0.85, rng=0
    )
    detection = OperationalAEDetection(
        profile=scenario.profile, naturalness=scenario.naturalness
    ).detect(scenario.model, scenario.operational_data, 600, rng=17)
    op_aware = OperationalRetrainer(
        config=RetrainingConfig(epochs=5), profile=scenario.profile, rng=0
    ).retrain(scenario.model, scenario.train_data, detection.adversarial_examples)
    op_ignorant = StandardAdversarialTrainer(
        epsilon=0.1, pgd_steps=3, epochs=2, learning_rate=3e-4, rng=0
    ).retrain(scenario.model, scenario.train_data)

    comparison_rows = [
        {
            "model": "original",
            "pmi": round(assessor.assess(scenario.model, scenario.operational_data, rng=0).pmi, 4),
        },
        {
            "model": "op-aware retraining (proposed)",
            "pmi": round(assessor.assess(op_aware, scenario.operational_data, rng=0).pmi, 4),
        },
        {
            "model": "madry adversarial training (OP-ignorant)",
            "pmi": round(assessor.assess(op_ignorant, scenario.operational_data, rng=0).pmi, 4),
        },
    ]
    return campaign, comparison_rows


def test_e7_reliability_growth(benchmark, clusters_scenario):
    campaign, comparison_rows = single_run(benchmark, _growth_and_comparison, clusters_scenario)
    print()
    print(format_table(campaign_to_rows(campaign), "E7a: pmi trajectory over loop iterations"))
    print(format_table(comparison_rows, "E7b: retraining scheme comparison"))
    original = comparison_rows[0]["pmi"]
    op_aware = comparison_rows[1]["pmi"]
    # OP-aware retraining must not degrade delivered reliability
    assert op_aware <= original + 0.02
    # the loop's final pmi must not be worse than where it started
    assert campaign.final_pmi <= campaign.iterations[0].pmi_before + 0.05
