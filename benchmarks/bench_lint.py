"""Lint-cache benchmark: a warm ``repro lint`` must be much cheaper than cold.

Times two back-to-back whole-program analyses of ``src/repro`` against a
fresh cache directory: the **cold** run parses every file and writes the
cache, the **warm** run must hit the cache for every file, reparse nothing,
and produce the identical finding set.  The speedup is pure cache behaviour
— per-file parsing and rule evaluation skipped, only the whole-program pass
recomputed — so it holds on a single-core CI host where parallel-speedup
numbers would be meaningless.

Two properties are validator-enforced when the section is embedded in
``BENCH_fuzzer.json`` (see ``benchmarks/bench_fuzzer_snapshot.py``):

* ``warm_speedup >= 3.0`` — the incremental cache pays for itself;
* ``findings_identical`` and ``warm.reparsed == 0`` — caching never changes
  what the linter reports, it only skips re-deriving it.

Standalone use::

    PYTHONPATH=src python benchmarks/bench_lint.py [output.json]
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile
import time
from pathlib import Path

from repro.analysis import analyze_paths

#: Validator floor on the cold/warm wall-time ratio.
MIN_WARM_SPEEDUP = 3.0

#: The tree the benchmark lints — the shipped package itself.
LINT_TARGET = Path(__file__).resolve().parents[1] / "src" / "repro"


def _timed_run(cache_dir: str) -> dict:
    start = time.perf_counter()
    result = analyze_paths([str(LINT_TARGET)], cache_dir=cache_dir)
    elapsed = time.perf_counter() - start
    return {
        "wall_time_s": round(elapsed, 4),
        "files_scanned": result.files_scanned,
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "reparsed": len(result.reparsed),
        "findings": len(result.findings),
        "suppressed": result.suppressed,
    }


def lint_performance_section() -> dict:
    scratch = tempfile.mkdtemp(prefix="repro-lint-bench-")
    try:
        cold = _timed_run(scratch)
        warm = _timed_run(scratch)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    return {
        "target": "src/repro",
        "min_warm_speedup": MIN_WARM_SPEEDUP,
        "cold": cold,
        "warm": warm,
        "warm_speedup": round(
            cold["wall_time_s"] / max(warm["wall_time_s"], 1e-9), 2
        ),
        "findings_identical": (
            cold["findings"] == warm["findings"]
            and cold["suppressed"] == warm["suppressed"]
        ),
    }


def validate_lint_performance_section(section: dict) -> None:
    """The validator-enforced contracts: >=3x warm speedup, identical output."""
    if not section["findings_identical"]:
        raise AssertionError(
            "warm lint run changed the finding set — the cache must only "
            "skip work, never alter results"
        )
    warm = section["warm"]
    if warm["reparsed"] != 0 or warm["cache_misses"] != 0:
        raise AssertionError(
            f"warm lint run was not fully cached: reparsed={warm['reparsed']} "
            f"misses={warm['cache_misses']}"
        )
    floor = float(section["min_warm_speedup"])
    if float(section["warm_speedup"]) < floor:
        raise AssertionError(
            f"warm lint speedup {section['warm_speedup']}x is below the "
            f"{floor}x floor — the incremental cache is not paying for itself"
        )


def main(output: str = "") -> dict:
    section = lint_performance_section()
    validate_lint_performance_section(section)
    rendered = json.dumps(section, indent=2)
    print(rendered)
    if output:
        Path(output).write_text(rendered + "\n")
        print(f"\nwrote {Path(output).resolve()}")
    return section


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("output", nargs="?", default="")
    args = parser.parse_args()
    main(args.output)
