"""A1 — Ablation of the three guidance signals (OP weight, naturalness, gradient).

The proposed method mixes three signals: OP-weighted seed selection (RQ2), the
naturalness constraint (RQ3) and loss-gradient guidance (Section II.c).  This
ablation switches each off in turn and measures the operational-AE yield,
exposing what each contributes.
"""

from __future__ import annotations

from conftest import single_run

from repro.core import MethodComparison, OperationalAECriterion, OperationalAEDetection
from repro.evaluation import format_table
from repro.fuzzing import FuzzerConfig
from repro.sampling import OperationalSeedSampler


BUDGET = 500


def _variants(scenario):
    base_sampler = OperationalSeedSampler(profile=scenario.profile)
    no_op_sampler = OperationalSeedSampler(profile=scenario.profile, op_exponent=0.0)
    no_failure_sampler = OperationalSeedSampler(profile=scenario.profile, failure_exponent=0.0)
    return [
        OperationalAEDetection(
            profile=scenario.profile,
            naturalness=scenario.naturalness,
            sampler=base_sampler,
            name="full (OP + naturalness + gradient)",
        ),
        OperationalAEDetection(
            profile=scenario.profile,
            naturalness=scenario.naturalness,
            sampler=no_op_sampler,
            name="no OP weight in seed sampling",
        ),
        OperationalAEDetection(
            profile=scenario.profile,
            naturalness=scenario.naturalness,
            sampler=no_failure_sampler,
            name="no failure weight in seed sampling",
        ),
        OperationalAEDetection(
            profile=scenario.profile,
            naturalness=scenario.naturalness,
            sampler=base_sampler,
            fuzzer_config=FuzzerConfig(naturalness_threshold=0.0),
            name="no naturalness constraint",
        ),
        OperationalAEDetection(
            profile=scenario.profile,
            naturalness=scenario.naturalness,
            sampler=base_sampler,
            fuzzer_config=FuzzerConfig(use_gradient=False),
            name="no gradient guidance",
        ),
    ]


def _run_ablation(scenario):
    comparison = MethodComparison(
        _variants(scenario), OperationalAECriterion(min_naturalness=0.5, min_op_density=0.5)
    )
    return comparison.run(scenario.model, scenario.operational_data, [BUDGET], repeats=2, rng=23)


def test_a1_guidance_ablation(benchmark, clusters_scenario):
    report = single_run(benchmark, _run_ablation, clusters_scenario)
    print()
    print(format_table(report.as_rows(), "A1: guidance-signal ablation"))
    by_name = {s.method: s for s in report.scores}
    full = by_name["full (OP + naturalness + gradient)"]
    # removing the naturalness constraint lowers the mean naturalness of what is found
    no_nat = by_name["no naturalness constraint"]
    if full.total_aes and no_nat.total_aes:
        assert full.mean_naturalness >= no_nat.mean_naturalness - 0.1
    # removing the OP weight lowers the operational mass of what is found
    no_op = by_name["no OP weight in seed sampling"]
    if full.total_aes and no_op.total_aes:
        assert full.mean_op_density >= no_op.mean_op_density - 0.15
